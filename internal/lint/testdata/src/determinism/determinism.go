// Package determinism is the graphlint corpus for the determinism
// analyzer: canonical-output paths must not depend on map iteration order,
// wall clocks, randomness, or goroutine completion order.
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// badRenderCounts is the synthetic unsorted-map report writer: emission in
// map order makes the report bytes differ run to run.
func badRenderCounts(w io.Writer, counts map[string]int) {
	for k, v := range counts { // want `map iteration feeds canonical output directly`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// encodeKeysUnsorted appends map keys to the output slice and never sorts them.
func encodeKeysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys which is never sorted afterwards`
		keys = append(keys, k)
	}
	return keys
}

// okRenderSorted is the collect-keys-then-sort idiom: the append target is
// sorted after the loop, so emission order is canonical.
func okRenderSorted(w io.Writer, counts map[string]int) {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, counts[k])
	}
}

// okRenderSlices is the same idiom via the slices package... spelled with
// sort.Slice here to stay within the corpus imports.
func marshalSortSlice(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// okAggregate folds a map into order-insensitive scalars: no output order
// to corrupt.
func okAggregateRender(w io.Writer, counts map[string]int) {
	total := 0
	for _, v := range counts {
		total += v
	}
	fmt.Fprintf(w, "total=%d\n", total)
}

// encodeInvert builds another map — insertion order is irrelevant.
func encodeInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// badRenderClock stamps canonical output with the wall clock.
func badRenderClock(w io.Writer) {
	fmt.Fprintf(w, "generated at %v\n", time.Now()) // want `canonical output derived from the wall clock`
}

// encodeRandSalted salts canonical bytes with process-local randomness.
func encodeRandSalted() []byte {
	return []byte{byte(rand.Intn(256))} // want `canonical output derived from math/rand`
}

// okClockSeam threads an injected clock: no ambient time call.
func okRenderClockSeam(w io.Writer, now func() time.Time) {
	fmt.Fprintf(w, "generated at %v\n", now())
}

// badGoroutineAppend races goroutine completion order into the report
// assembly.
func badRenderParallel(w io.Writer, parts []string) {
	var out []string
	done := make(chan struct{})
	for _, p := range parts {
		p := p
		go func() {
			defer close(done)
			out = append(out, p+"!") // want `append to out from a goroutine`
		}()
	}
	<-done
	for _, p := range out {
		fmt.Fprintln(w, p)
	}
}

// okGoroutineIndexed writes results by index: completion order cannot
// reorder the output.
func okRenderParallelIndexed(w io.Writer, parts []string) {
	out := make([]string, len(parts))
	done := make(chan struct{}, len(parts))
	for i, p := range parts {
		i, p := i, p
		go func() {
			out[i] = p + "!"
			done <- struct{}{}
		}()
	}
	for range parts {
		<-done
	}
	for _, p := range out {
		fmt.Fprintln(w, p)
	}
}

// notCanonical has no io.Writer and no canonical prefix: a map range here
// is outside the contract (ordinary business logic may iterate freely).
func notCanonical(counts map[string]int) int {
	worst := 0
	for _, v := range counts {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// suppressedRender carries a reasoned suppression.
func suppressedRender(w io.Writer, counts map[string]int) {
	//lint:ignore determinism corpus: debug dump, explicitly documented as unordered
	for k, v := range counts {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// renderGeneric proves the analyzer traverses generic functions: same
// contract, type-parameterized.
func renderGeneric[V any](w io.Writer, m map[string]V) {
	for k, v := range m { // want `map iteration feeds canonical output directly`
		fmt.Fprintf(w, "%s=%v\n", k, v)
	}
}

// okRenderGeneric is the sorted generic variant.
func okRenderGeneric[V any](w io.Writer, m map[string]V) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%v\n", k, m[k])
	}
}
