// Package errtaxonomy is the graphlint corpus for the errtaxonomy
// analyzer: sentinel Err* values must be matched with errors.Is, and a
// boundary fmt.Errorf carrying an error must wrap with %w.
package errtaxonomy

import (
	"errors"
	"fmt"
	"io"
)

var ErrBudget = errors.New("budget exceeded")

func badEq(err error) bool {
	return err == ErrBudget // want `sentinel comparison == ErrBudget`
}

func badNe(err error) bool {
	return err != ErrBudget // want `sentinel comparison != ErrBudget`
}

func badSwitch(err error) int {
	switch err {
	case ErrBudget: // want `switch case on sentinel ErrBudget`
		return 1
	}
	return 0
}

func badWrap(err error) error {
	return fmt.Errorf("load failed: %v", err) // want `without %w`
}

func okIs(err error) bool { return errors.Is(err, ErrBudget) }

func okNil(err error) bool { return err == nil }

// io.EOF is documented to arrive unwrapped from Readers; == is its contract.
func okEOF(err error) bool { return err == io.EOF }

func okWrap(err error) error { return fmt.Errorf("load failed: %w", err) }

// The established boundary idiom: wrap the sentinel, annotate the cause.
func okAnnotate(err error) error {
	return fmt.Errorf("%w: decode: %v", ErrBudget, err)
}

func suppressedEq(err error) bool {
	//lint:ignore errtaxonomy corpus: identity comparison is intentional here
	return err == ErrBudget
}
