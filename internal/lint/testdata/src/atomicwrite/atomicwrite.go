// Package atomicwrite is the graphlint corpus for the atomicwrite
// analyzer: raw persistence calls outside internal/artifact are findings.
package atomicwrite

import "os"

func badWrite(p string, b []byte) error {
	return os.WriteFile(p, b, 0o644) // want `raw os\.WriteFile bypasses`
}

func badCreate(p string) error {
	f, err := os.Create(p) // want `raw os\.Create bypasses`
	if err != nil {
		return err
	}
	return f.Close()
}

func badRename(a, b string) error {
	return os.Rename(a, b) // want `raw os\.Rename bypasses`
}

func badRemove(p string) error {
	return os.Remove(p) // want `raw os\.Remove bypasses`
}

func badMkdirAll(p string) error {
	return os.MkdirAll(p, 0o755) // want `raw os\.MkdirAll bypasses`
}

func badReadDir(p string) (int, error) {
	ents, err := os.ReadDir(p) // want `raw os\.ReadDir bypasses`
	return len(ents), err
}

func okRead(p string) ([]byte, error) {
	return os.ReadFile(p)
}

func suppressed(p string, b []byte) error {
	//lint:ignore atomicwrite corpus: demonstrates a justified, reasoned suppression
	return os.WriteFile(p, b, 0o644)
}
