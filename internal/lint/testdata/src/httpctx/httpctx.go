// Package httpctx is the graphlint corpus for the httpctx analyzer:
// handlers use r.Context(), and every http.Server sets read and write
// timeouts.
package httpctx

import (
	"context"
	"net/http"
	"time"
)

func badHandler(w http.ResponseWriter, r *http.Request) {
	work(context.Background()) // want `handler code must use r.Context`
}

func badHandlerTODO(w http.ResponseWriter, r *http.Request) {
	work(context.TODO()) // want `handler code must use r.Context`
}

func badNestedInHandler(w http.ResponseWriter, r *http.Request) {
	go func() {
		work(context.Background()) // want `handler code must use r.Context`
	}()
}

func okHandler(w http.ResponseWriter, r *http.Request) {
	work(r.Context())
}

func okHandlerDerived(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	work(ctx)
}

// Not handler code: no *http.Request in scope, so httpctx leaves this to
// the ctxpropagate analyzer.
func notAHandler() {
	work(context.Background())
}

func suppressedHandler(w http.ResponseWriter, r *http.Request) {
	//lint:ignore httpctx corpus: audit logger documented to outlive the request
	work(context.Background())
}

func badServerNoTimeouts() *http.Server {
	return &http.Server{ // want `must set ReadTimeout or ReadHeaderTimeout` `must set WriteTimeout`
		Addr: ":8080",
	}
}

func badServerReadOnly() *http.Server {
	return &http.Server{ // want `must set WriteTimeout`
		Addr:        ":8080",
		ReadTimeout: 5 * time.Second,
	}
}

func badServerWriteOnly() *http.Server {
	return &http.Server{ // want `must set ReadTimeout or ReadHeaderTimeout`
		Addr:         ":8080",
		WriteTimeout: 5 * time.Second,
	}
}

func okServer() *http.Server {
	return &http.Server{
		Addr:              ":8080",
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
}

func okServerValue() http.Server {
	return http.Server{
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
}

func badDefaultServer() error {
	return http.ListenAndServe(":8080", nil) // want `no timeouts`
}

func work(ctx context.Context) {
	<-ctx.Done()
}
