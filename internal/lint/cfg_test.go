package lint

// White-box tests for the control-flow layer: block structure, dominator
// and post-dominator fixpoints, site lookup, and the dominatesSite relation
// the fsyncorder analyzer is built on. Functions are parsed from snippets
// so each test names exactly the shape it pins.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses `func f(...) {...}` source and returns the body's CFG.
func parseFunc(t *testing.T, src string) (*token.FileSet, *funcCFG) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fset, buildCFG(fd.Body)
		}
	}
	t.Fatal("no function in snippet")
	return nil, nil
}

// callSites returns the sites of every call to the named function.
func callSites(g *funcCFG, name string) []nodeSite {
	return g.sites(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fn := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fn.Name == name
		case *ast.SelectorExpr:
			return fn.Sel.Name == name
		}
		return false
	})
}

// one returns the single site of the named call, failing otherwise.
func one(t *testing.T, g *funcCFG, name string) nodeSite {
	t.Helper()
	s := callSites(g, name)
	if len(s) != 1 {
		t.Fatalf("callSites(%s) = %d sites, want 1", name, len(s))
	}
	return s[0]
}

func TestCFGStraightLineDominance(t *testing.T) {
	_, g := parseFunc(t, `
func f() {
	first()
	second()
}`)
	dom := g.dominators()
	a, b := one(t, g, "first"), one(t, g, "second")
	if !dominatesSite(dom, a, b) {
		t.Error("first() must dominate second() in straight-line code")
	}
	if dominatesSite(dom, b, a) {
		t.Error("second() must not dominate first()")
	}
}

func TestCFGBranchDominance(t *testing.T) {
	_, g := parseFunc(t, `
func f(ok bool) {
	before()
	if ok {
		inside()
	}
	after()
}`)
	dom := g.dominators()
	before, inside, after := one(t, g, "before"), one(t, g, "inside"), one(t, g, "after")
	if !dominatesSite(dom, before, after) {
		t.Error("before() must dominate after(): it precedes the branch")
	}
	if dominatesSite(dom, inside, after) {
		t.Error("inside() must not dominate after(): the else path skips it")
	}
	if !dominatesSite(dom, before, inside) {
		t.Error("before() must dominate inside()")
	}
}

func TestCFGBothBranchesNoDominance(t *testing.T) {
	// A site in each arm: neither dominates the join. This is exactly why
	// fsyncorder's must-check rejects sync-on-one-branch even when the
	// other branch also syncs — dominance needs a single covering site.
	// (lockdiscipline's meet-over-paths handles the both-arms case.)
	_, g := parseFunc(t, `
func f(ok bool) {
	if ok {
		inside()
	} else {
		elsewhere()
	}
	after()
}`)
	dom := g.dominators()
	inside, elsewhere, after := one(t, g, "inside"), one(t, g, "elsewhere"), one(t, g, "after")
	if dominatesSite(dom, inside, after) || dominatesSite(dom, elsewhere, after) {
		t.Error("neither arm alone may dominate the join point")
	}
}

func TestCFGEarlyReturnMakesRemainderDominated(t *testing.T) {
	_, g := parseFunc(t, `
func f(err error) {
	if err != nil {
		return
	}
	guarded()
	after()
}`)
	dom := g.dominators()
	guarded, after := one(t, g, "guarded"), one(t, g, "after")
	if !dominatesSite(dom, guarded, after) {
		t.Error("guarded() must dominate after(): the error path returned")
	}
}

func TestCFGPanicIsTerminal(t *testing.T) {
	_, g := parseFunc(t, `
func f(bad bool) {
	if bad {
		panic("boom")
	}
	survivor()
}`)
	// The panic arm must not fall through into survivor()'s block: the
	// panic block's only successor is the exit.
	site := one(t, g, "survivor")
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				for _, s := range blk.succs {
					if s == site.block {
						t.Error("panic block must not flow into the code after the if")
					}
					if s != g.exit {
						t.Errorf("panic block successor is block %d, want exit", s.index)
					}
				}
			}
		}
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	_, g := parseFunc(t, `
func f(xs []int) {
	for _, x := range xs {
		body(x)
	}
	after()
}`)
	dom := g.dominators()
	body, after := one(t, g, "body"), one(t, g, "after")
	if dominatesSite(dom, body, after) {
		t.Error("loop body must not dominate the code after the loop (zero iterations skip it)")
	}
	// The body block must have a path back to its own block (through the
	// range head): loops are cyclic.
	seen := map[*cfgBlock]bool{}
	var reach func(b *cfgBlock)
	reach = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.succs {
			reach(s)
		}
	}
	for _, s := range body.block.succs {
		reach(s)
	}
	if !seen[body.block] {
		t.Error("range body must be reachable from itself via the back edge")
	}
}

func TestCFGPostDominators(t *testing.T) {
	_, g := parseFunc(t, `
func f(ok bool) {
	if ok {
		inside()
	}
	always()
}`)
	pdom := g.postDominators()
	inside, always := one(t, g, "inside"), one(t, g, "always")
	if !pdom[inside.block.index].has(always.block.index) {
		t.Error("always() block must post-dominate the branch arm")
	}
	if pdom[always.block.index].has(inside.block.index) {
		t.Error("the branch arm must not post-dominate the join")
	}
}

func TestCFGGotoResolvesForward(t *testing.T) {
	_, g := parseFunc(t, `
func f(skip bool) {
	if skip {
		goto done
	}
	work()
done:
	after()
}`)
	dom := g.dominators()
	work, after := one(t, g, "work"), one(t, g, "after")
	if dominatesSite(dom, work, after) {
		t.Error("work() must not dominate after(): the goto bypasses it")
	}
}

func TestCFGSitesSkipFuncLits(t *testing.T) {
	_, g := parseFunc(t, `
func f() {
	outer()
	go func() {
		inner()
	}()
}`)
	if n := len(callSites(g, "inner")); n != 0 {
		t.Errorf("sites must not descend into function literals, found %d inner() sites", n)
	}
	if n := len(callSites(g, "outer")); n != 1 {
		t.Errorf("outer() sites = %d, want 1", n)
	}
}

func TestCFGSwitchClauses(t *testing.T) {
	_, g := parseFunc(t, `
func f(x int) {
	switch x {
	case 1:
		caseOne()
	case 2:
		caseTwo()
	}
	after()
}`)
	dom := g.dominators()
	c1, c2, after := one(t, g, "caseOne"), one(t, g, "caseTwo"), one(t, g, "after")
	if dominatesSite(dom, c1, after) || dominatesSite(dom, c2, after) {
		t.Error("no single switch clause may dominate the code after the switch")
	}
	if dominatesSite(dom, c1, c2) || dominatesSite(dom, c2, c1) {
		t.Error("sibling clauses must not dominate each other")
	}
}
