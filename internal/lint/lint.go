// Package lint implements graphlint, a stdlib-only static-analysis suite
// that enforces the pipeline's safety contracts. Each analyzer encodes one
// convention established by an earlier PR — atomic persistence, the
// errors.Is taxonomy, context threading, decoded-length plausibility caps,
// and goroutine lifetime tying — so that the invariants live in CI rather
// than in prose.
//
// The suite is built entirely on go/parser, go/ast, go/types and
// go/importer; the module has zero dependencies and must stay that way.
// Packages are loaded from source (see Loader), analyzers run over the
// type-checked AST, and findings can be suppressed with a mandatory-reason
// comment:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// placed on the offending line or the line directly above it. A
// suppression without a reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Diagnostic is one finding: an analyzer, a position, and a message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Pass carries one type-checked package through one analyzer. Report
// records a finding; suppression filtering happens in Run, after every
// analyzer has seen the package.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	report func(analyzer string, pos token.Pos, format string, args ...any)
	name   string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(p.name, pos, format, args...)
}

// TypeOf returns the static type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// An Analyzer is one contract check. Run inspects a single package and
// reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All is the full graphlint suite, in the order findings are attributed.
// The first seven are the syntactic contract analyzers from PRs 5/6/9; the
// last four are flow-sensitive, built on the CFG + def-use layer (cfg.go).
var All = []*Analyzer{
	AtomicWrite,
	ErrTaxonomy,
	CtxPropagate,
	AllocBound,
	LeakyGoroutine,
	HTTPCtx,
	SSEContract,
	Determinism,
	Lockdiscipline,
	Atomicmix,
	Fsyncorder,
}

// Run executes every analyzer over every package and returns the surviving
// diagnostics sorted by position. Findings matched by a well-formed
// //lint:ignore suppression are dropped; malformed suppressions are
// reported as findings of the pseudo-analyzer "suppress".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup, bad := collectSuppressions(pkg.Fset, pkg.Files)
		diags = append(diags, bad...)
		pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
		pass.report = func(analyzer string, pos token.Pos, format string, args ...any) {
			p := pkg.Fset.Position(pos)
			if sup.matches(analyzer, p) {
				return
			}
			diags = append(diags, Diagnostic{
				Analyzer: analyzer,
				Pos:      p,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		for _, a := range analyzers {
			pass.name = a.Name
			runIsolated(pass, a, pkg, &diags)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// runIsolated executes one analyzer over one package with panic capture: a
// crash on an exotic construct (a generic instantiation the analyzer never
// anticipated, say) becomes a structured finding of the pseudo-analyzer
// "internal" instead of killing the whole run. The contract suite must
// degrade like the pipeline it lints.
func runIsolated(pass *Pass, a *Analyzer, pkg *Package, diags *[]Diagnostic) {
	defer func() {
		if r := recover(); r != nil {
			pos := token.Position{Filename: pkg.Dir}
			if len(pkg.Files) > 0 {
				pos = pkg.Fset.Position(pkg.Files[0].Pos())
			}
			*diags = append(*diags, Diagnostic{
				Analyzer: "internal",
				Pos:      pos,
				Message:  fmt.Sprintf("analyzer %s panicked on %s: %v", a.Name, pkg.Path, r),
			})
		}
	}()
	a.Run(pass)
}

// isPkgFunc reports whether the call resolves to the named function (or
// method) declared in the package with the given import path.
func isPkgFunc(pass *Pass, call *ast.CallExpr, pkgPath string, names ...string) bool {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.Ident:
		id = fn
	default:
		return false
	}
	obj, ok := pass.ObjectOf(id).(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}
