package lint

import (
	"go/ast"
	"go/types"
)

// HTTPCtx enforces the daemon-hardening contract from the cmd/dsed work.
// Two shapes are flagged:
//
//   - HTTP handler code — any function receiving an *http.Request — that
//     mints context.Background()/context.TODO() instead of using
//     r.Context(). The request context is what cancels in-flight work when
//     the client disconnects or the server drains; a fresh root context
//     severs that chain and leaks the handler past the connection.
//   - An http.Server composite literal that leaves both read timeouts
//     (ReadTimeout and ReadHeaderTimeout) or WriteTimeout unset, and the
//     package-level http.ListenAndServe helpers, which cannot set either. A
//     server accepting network input without deadlines lets one stalled
//     peer pin a connection and its goroutine forever — the opposite of the
//     bounded-resource discipline the daemon is built on.
var HTTPCtx = &Analyzer{
	Name: "httpctx",
	Doc:  "handlers use r.Context(), and every http.Server sets read and write timeouts",
	Run:  runHTTPCtx,
}

func runHTTPCtx(pass *Pass) {
	for _, f := range pass.Files {
		// stack mirrors the enclosing functions with "does any of them
		// receive an *http.Request", the marker of handler code.
		var stack []ast.Node
		var inHandler []bool
		isFunc := func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				return true
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if isFunc(top) {
					inHandler = inHandler[:len(inHandler)-1]
				}
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.FuncDecl:
				inHandler = append(inHandler, tailOr(inHandler) || fieldListTakesRequest(pass, n.Type.Params))
			case *ast.FuncLit:
				inHandler = append(inHandler, tailOr(inHandler) || fieldListTakesRequest(pass, n.Type.Params))
			case *ast.CompositeLit:
				checkServerLiteral(pass, n)
			case *ast.CallExpr:
				if tailOr(inHandler) && isPkgFunc(pass, n, "context", "Background", "TODO") {
					pass.Reportf(n.Pos(),
						"handler code must use r.Context(), not a fresh root context: the request context is what cancels work on disconnect and drain")
				}
				if isPkgFunc(pass, n, "net/http", "ListenAndServe", "ListenAndServeTLS") {
					pass.Reportf(n.Pos(),
						"http.ListenAndServe uses a Server with no timeouts; build an http.Server with ReadTimeout/ReadHeaderTimeout and WriteTimeout set")
				}
			}
			return true
		})
	}
}

// checkServerLiteral flags an http.Server composite literal missing its
// read or write deadlines.
func checkServerLiteral(pass *Pass, cl *ast.CompositeLit) {
	if !isHTTPServerType(pass.TypeOf(cl)) {
		return
	}
	var hasRead, hasWrite, positional bool
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// A positional http.Server literal fills every field; the zero
			// values it spells out are visible at the call site, so leave
			// it to review rather than guess field indices here.
			positional = true
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "ReadTimeout", "ReadHeaderTimeout":
			hasRead = true
		case "WriteTimeout":
			hasWrite = true
		}
	}
	if positional {
		return
	}
	if !hasRead {
		pass.Reportf(cl.Pos(),
			"http.Server must set ReadTimeout or ReadHeaderTimeout: without one, a stalled peer pins its connection forever")
	}
	if !hasWrite {
		pass.Reportf(cl.Pos(),
			"http.Server must set WriteTimeout: without it, a slow-reading peer pins its connection forever")
	}
}

// fieldListTakesRequest reports whether any parameter is an *http.Request.
func fieldListTakesRequest(pass *Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, p := range params.List {
		ptr, ok := pass.TypeOf(p.Type).(*types.Pointer)
		if !ok {
			continue
		}
		if named, ok := ptr.Elem().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request" {
				return true
			}
		}
	}
	return false
}

// isHTTPServerType reports whether t is net/http.Server.
func isHTTPServerType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Server"
}
