package lint_test

// Loader hardening tests: a throwaway module full of generics must load
// and lint without panics, and a type-checker panic on one package must
// degrade to a structured warning instead of killing the run.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphdse/internal/lint"
)

// writeThrowawayModule materializes a tiny generics-heavy module in a temp
// dir: a generic container package, a package instantiating it, and a
// plain package, so the loader exercises instantiation across package
// boundaries.
func writeThrowawayModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module throwaway\n\ngo 1.24\n")
	write("box/box.go", `// Package box is a generic container.
package box

type Box[T any] struct{ v T }

func New[T any](v T) Box[T]  { return Box[T]{v: v} }
func (b Box[T]) Get() T      { return b.v }
func Map[T, U any](b Box[T], f func(T) U) Box[U] { return New(f(b.Get())) }

type Number interface{ ~int | ~int64 | ~float64 }

func Sum[N Number](xs []N) N {
	var total N
	for _, x := range xs {
		total += x
	}
	return total
}
`)
	write("use/use.go", `// Package use instantiates box across a package boundary.
package use

import "throwaway/box"

func Doubled(xs []int) int {
	b := box.New(box.Sum(xs))
	return box.Map(b, func(v int) int { return v * 2 }).Get()
}

type pair[K comparable, V any] struct {
	k K
	v V
}

func keys[K comparable, V any](ps []pair[K, V]) []K {
	out := make([]K, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.k)
	}
	return out
}

var _ = keys[string, int]
`)
	write("plain/plain.go", `// Package plain has no generics at all.
package plain

func Add(a, b int) int { return a + b }
`)
	return root
}

func TestLoaderGenericsModule(t *testing.T) {
	root := writeThrowawayModule(t)
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll on generics module: %v", err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("loaded %d packages, want 3: %v", len(pkgs), paths(pkgs))
	}
	if len(loader.Warnings()) != 0 {
		t.Fatalf("unexpected load warnings: %v", loader.Warnings())
	}
	// The full suite must traverse generic declarations and instantiations
	// without crashing. Any panic would surface as an "internal" finding
	// through runIsolated, so a diagnostic-free run proves both no
	// contract violations and no analyzer crashes.
	for _, d := range lint.Run(pkgs, lint.All) {
		t.Errorf("unexpected diagnostic on generics module: %s", d)
	}
}

func TestLoaderCheckPanicSkipsPackage(t *testing.T) {
	root := writeThrowawayModule(t)
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.SetCheckHook(func(path string) {
		if strings.HasSuffix(path, "/use") {
			panic("synthetic instantiation blow-up")
		}
	})
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll must skip the panicking package, not fail: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (use skipped): %v", len(pkgs), paths(pkgs))
	}
	warns := loader.Warnings()
	if len(warns) != 1 {
		t.Fatalf("warnings = %v, want exactly one", warns)
	}
	w := warns[0]
	if w.Path != "throwaway/use" {
		t.Errorf("warning path = %q, want throwaway/use", w.Path)
	}
	if !strings.Contains(w.Reason, "synthetic instantiation blow-up") {
		t.Errorf("warning reason %q must carry the panic value", w.Reason)
	}
	if !strings.Contains(w.String(), "skipped throwaway/use") {
		t.Errorf("warning rendering %q must identify the skipped package", w)
	}
}

func TestLoaderCheckPanicStillFatalForDirectLoad(t *testing.T) {
	// Loading one directory explicitly (not via patterns) keeps the error:
	// the caller asked for that package, so silently skipping it would
	// lie. Only the module-wide walk degrades.
	root := writeThrowawayModule(t)
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.SetCheckHook(func(string) { panic("boom") })
	if _, err := loader.LoadDir(filepath.Join(root, "plain")); err == nil {
		t.Fatal("LoadDir on a panicking package must return an error")
	}
}
