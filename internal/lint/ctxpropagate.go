package lint

import (
	"go/ast"
	"go/types"
)

// CtxPropagate enforces the context-threading contract from the supervised
// runtime work: long-running library APIs take a context.Context and pass
// it down, so cancellation, deadlines, and SIGTERM drains reach every
// layer. Minting a fresh context.Background()/context.TODO() severs that
// chain. Two shapes are flagged:
//
//   - any function that already receives a context.Context but calls
//     context.Background()/TODO() inside (the strongest violation: a ctx
//     was available and was discarded), and
//   - any other use in a non-main package (library code must accept the
//     context from its caller; only binaries mint the root context).
//
// Documented top-level convenience wrappers (dse.RunWorkflow and friends)
// carry a //lint:ignore ctxpropagate suppression with the rationale.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "functions receiving a ctx must not mint context.Background/TODO; library code threads the caller's context",
	Run:  runCtxPropagate,
}

func runCtxPropagate(pass *Pass) {
	for _, f := range pass.Files {
		// stack tracks every node on the path from the file root so the
		// nil (post-order) callback can pop; hasCtx mirrors the enclosing
		// functions with "does any of them take a context.Context".
		var stack []ast.Node
		var hasCtx []bool
		isFunc := func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				return true
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if isFunc(top) {
					hasCtx = hasCtx[:len(hasCtx)-1]
				}
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.FuncDecl:
				hasCtx = append(hasCtx, tailOr(hasCtx) || fieldListTakesCtx(pass, n.Type.Params))
			case *ast.FuncLit:
				hasCtx = append(hasCtx, tailOr(hasCtx) || fieldListTakesCtx(pass, n.Type.Params))
			case *ast.CallExpr:
				if !isPkgFunc(pass, n, "context", "Background", "TODO") {
					return true
				}
				switch {
				case tailOr(hasCtx):
					pass.Reportf(n.Pos(),
						"function already receives a context.Context; thread it instead of minting a fresh context")
				case pass.Pkg.Name() != "main":
					pass.Reportf(n.Pos(),
						"library code must accept a context from the caller; only package main mints the root context")
				}
			}
			return true
		})
	}
}

func tailOr(stack []bool) bool {
	return len(stack) > 0 && stack[len(stack)-1]
}

func fieldListTakesCtx(pass *Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, p := range params.List {
		if isContextType(pass.TypeOf(p.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
