package lint

// Baseline support: a committed JSON file of known findings that are
// reported but non-fatal. The point is ratcheting — a new analyzer can land
// with the tree's pre-existing debt captured explicitly (each entry carries
// a mandatory reason), while any NEW violation still fails the run. Stale
// entries (matching nothing) are surfaced so the file shrinks as debt is
// paid down, instead of fossilizing.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// A BaselineEntry accepts one class of finding. File is a module-relative
// slash path; Message is a regexp matched against the diagnostic message so
// one entry can cover a finding whose wording carries positions or counts.
// Reason is mandatory: a baseline without a justification is just a mute
// button.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Reason   string `json:"reason"`

	re   *regexp.Regexp
	hits int
}

// A Baseline is the parsed, validated baseline file.
type Baseline struct {
	Entries []*BaselineEntry `json:"entries"`
}

// LoadBaseline reads and validates a baseline file. Every entry must name
// an analyzer and a file, compile as a regexp, and carry a non-empty
// reason.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBaseline(data)
}

// ParseBaseline validates baseline JSON.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	for i, e := range b.Entries {
		if e.Analyzer == "" || e.File == "" {
			return nil, fmt.Errorf("baseline entry %d: analyzer and file are required", i)
		}
		if strings.TrimSpace(e.Reason) == "" {
			return nil, fmt.Errorf("baseline entry %d (%s in %s): reason is required", i, e.Analyzer, e.File)
		}
		pat := e.Message
		if pat == "" {
			pat = ".*"
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("baseline entry %d: bad message regexp: %w", i, err)
		}
		e.re = re
	}
	return &b, nil
}

// match reports whether the entry accepts the diagnostic.
func (e *BaselineEntry) match(d Diagnostic) bool {
	if e.Analyzer != d.Analyzer {
		return false
	}
	f := filepath.ToSlash(d.Pos.Filename)
	if f != e.File && !strings.HasSuffix(f, "/"+e.File) {
		return false
	}
	return e.re.MatchString(d.Message)
}

// Apply splits diagnostics into active (fatal) and baselined (reported,
// non-fatal) findings. Entries record how many findings they absorbed so
// Stale can name dead weight afterwards.
func (b *Baseline) Apply(diags []Diagnostic) (active, baselined []Diagnostic) {
	if b == nil {
		return diags, nil
	}
	for _, d := range diags {
		matched := false
		for _, e := range b.Entries {
			if e.match(d) {
				e.hits++
				matched = true
				break
			}
		}
		if matched {
			baselined = append(baselined, d)
		} else {
			active = append(active, d)
		}
	}
	return active, baselined
}

// Reason returns the reason of the first entry matching the diagnostic, or
// "" when none does.
func (b *Baseline) Reason(d Diagnostic) string {
	if b == nil {
		return ""
	}
	for _, e := range b.Entries {
		if e.match(d) {
			return e.Reason
		}
	}
	return ""
}

// Stale returns the entries that matched no finding in the last Apply:
// debt that has been paid but not yet deleted from the file.
func (b *Baseline) Stale() []*BaselineEntry {
	if b == nil {
		return nil
	}
	var out []*BaselineEntry
	for _, e := range b.Entries {
		if e.hits == 0 {
			out = append(out, e)
		}
	}
	return out
}
