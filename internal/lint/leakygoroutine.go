package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakyGoroutine enforces the goroutine-lifetime contract from the
// supervised-runtime work: a `go func` literal must be tied to something
// that bounds its life — a context, a done/quit channel, a WaitGroup — or
// it can outlive its caller and leak (the class the goroutine-leak tests
// in internal/trace and internal/dse guard against dynamically; this
// analyzer guards it statically).
//
// A literal counts as tied when its body (or deferred calls within it)
// performs any channel operation (send, receive, close, range over a
// channel, select), references a context.Context value, or calls
// sync.WaitGroup Add/Done/Wait. Named-function goroutines (`go worker()`)
// are not flagged: the contract is about anonymous fire-and-forget
// literals, where the leak class actually occurs.
var LeakyGoroutine = &Analyzer{
	Name: "leakygoroutine",
	Doc:  "go func literals must be tied to a ctx, done channel, or WaitGroup",
	Run:  runLeakyGoroutine,
}

func runLeakyGoroutine(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			if !goroutineIsTied(pass, lit) {
				pass.Reportf(gs.Pos(),
					"goroutine is not tied to a context, done channel, or WaitGroup and can outlive its caller")
			}
			return true
		})
	}
}

func goroutineIsTied(pass *Pass, lit *ast.FuncLit) bool {
	tied := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			tied = true
		case *ast.UnaryExpr:
			tied = tied || n.Op == token.ARROW
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "close" {
					tied = true
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if obj, ok := pass.ObjectOf(sel.Sel).(*types.Func); ok && obj.Pkg() != nil &&
					obj.Pkg().Path() == "sync" {
					switch obj.Name() {
					case "Add", "Done", "Wait":
						tied = true
					}
				}
			}
		case *ast.Ident:
			if obj := pass.ObjectOf(n); obj != nil && isContextType(obj.Type()) {
				tied = true
			}
		}
		return !tied
	})
	return tied
}
