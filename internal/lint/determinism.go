package lint

// Determinism enforces the byte-identical-output contract the daemon's
// crash-recovery proof rests on (PRs 6/9): canonical reports, golden
// fixtures, and journal records must not depend on map iteration order,
// wall-clock time, process-local randomness, or goroutine completion order.
//
// Scope: "canonical output" functions — any function that takes an
// io.Writer parameter, or whose name begins (case-insensitively) with
// Canonical, Encode, Marshal, Render, Format, Plot, or Export. That is the
// report/Pareto assembly surface, the golden-fixture producers, and the
// journal encoders the contract names.
//
// Three findings, all flow-sensitive over the function body:
//
//   - a `range` over a map whose body feeds output — writes through an
//     io.Writer / fmt.Fprint* / strings.Builder, or appends to a slice that
//     outlives the loop — unless every such slice is passed to a sort call
//     after the loop (the collect-keys-then-sort idiom);
//   - a direct call to time.Now/Since/Until or anything in math/rand:
//     canonical bytes must come from injected seams (a clock or seed
//     parameter/field), never ambient nondeterminism;
//   - an append from inside a `go` literal to a slice declared outside it:
//     the element order then depends on goroutine completion order.

import (
	"go/ast"
	"go/types"
	"strings"
)

var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "canonical-output paths must not depend on map order, wall clocks, randomness, or goroutine scheduling",
	Run:  runDeterminism,
}

// canonicalPrefixes mark function names that produce canonical bytes.
var canonicalPrefixes = []string{"canonical", "encode", "marshal", "render", "format", "plot", "export"}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !isCanonicalFunc(pass, fn) {
				continue
			}
			checkDeterminism(pass, fn.Body)
		}
	}
}

// isCanonicalFunc reports whether fn is a canonical-output path: it takes
// an io.Writer, or its name carries a canonical prefix.
func isCanonicalFunc(pass *Pass, fn *ast.FuncDecl) bool {
	name := strings.ToLower(fn.Name.Name)
	for _, p := range canonicalPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	if fn.Type.Params != nil {
		for _, p := range fn.Type.Params.List {
			if isIOWriter(pass.TypeOf(p.Type)) {
				return true
			}
		}
	}
	return false
}

// isIOWriter reports whether t is exactly the io.Writer interface type.
func isIOWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "io" && obj.Name() == "Writer"
}

// checkDeterminism runs all three checks over one canonical function body.
func checkDeterminism(pass *Pass, body *ast.BlockStmt) {
	// Collect sort-call sites up front: any call into sort or slices
	// mentioning a variable counts as canonicalizing that variable.
	sorted := map[types.Object][]ast.Node{} // object -> sort call nodes
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isPkgFunc(pass, call, "sort",
			"Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable") &&
			!isPkgFunc(pass, call, "slices",
				"Sort", "SortFunc", "SortStableFunc") {
			return true
		}
		for _, arg := range call.Args {
			for obj := range referencedObjects(pass, arg) {
				sorted[obj] = append(sorted[obj], call)
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkMapRange(pass, n, sorted)
		case *ast.CallExpr:
			if isPkgFunc(pass, n, "time", "Now", "Since", "Until") {
				pass.Reportf(n.Pos(),
					"canonical output derived from the wall clock; inject a clock seam instead of calling time.%s", calledName(n))
			}
			if isPkgPathCall(pass, n, "math/rand") || isPkgPathCall(pass, n, "math/rand/v2") {
				pass.Reportf(n.Pos(),
					"canonical output derived from math/rand; inject a seeded source through a seam instead")
			}
		case *ast.GoStmt:
			checkGoroutineAppend(pass, n, body)
		}
		return true
	})
}

// calledName renders the selector/ident name of a call for messages.
func calledName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return "?"
}

// isPkgPathCall reports whether the call resolves to any function of the
// package with the given import path.
func isPkgPathCall(pass *Pass, call *ast.CallExpr, pkgPath string) bool {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.Ident:
		id = fn
	default:
		return false
	}
	obj, ok := pass.ObjectOf(id).(*types.Func)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// checkMapRange flags a map iteration whose body feeds output without a
// canonicalizing sort downstream.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, sorted map[types.Object][]ast.Node) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	// Classify the loop body: direct writes are an immediate finding;
	// appends to outer slices are fine only when each target is sorted
	// after the loop.
	var appendTargets []types.Object
	directWrite := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isOutputWrite(pass, n) {
				directWrite = true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isB := pass.ObjectOf(id).(*types.Builtin); isB && len(n.Args) > 0 {
					if tid := baseIdent(n.Args[0]); tid != nil {
						if obj := pass.ObjectOf(tid); obj != nil && !declaredIn(obj, rng) {
							appendTargets = append(appendTargets, obj)
						}
					}
				}
			}
		}
		return true
	})

	if directWrite {
		pass.Reportf(rng.Pos(),
			"map iteration feeds canonical output directly; collect the keys, sort them, then emit in key order")
		return
	}
	for _, obj := range appendTargets {
		ok := false
		for _, site := range sorted[obj] {
			if site.Pos() > rng.End() {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(rng.Pos(),
				"map iteration appends to %s which is never sorted afterwards; canonical output inherits map order", obj.Name())
			return
		}
	}
}

// isOutputWrite reports whether the call emits bytes: fmt.Fprint*, or a
// Write/WriteString/WriteByte/WriteRune method call.
func isOutputWrite(pass *Pass, call *ast.CallExpr) bool {
	if isPkgFunc(pass, call, "fmt", "Fprint", "Fprintf", "Fprintln") {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		// Only count method calls (a receiver with that method), not
		// package funcs like artifact.WriteFileAtomic.
		if _, isSel := pass.Info.Selections[sel]; isSel {
			return true
		}
	}
	return false
}

// checkGoroutineAppend flags appends inside a go literal to slices declared
// outside it: completion order then decides element order.
func checkGoroutineAppend(pass *Pass, g *ast.GoStmt, enclosing *ast.BlockStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if _, isB := pass.ObjectOf(id).(*types.Builtin); !isB || len(call.Args) == 0 {
			return true
		}
		tid := baseIdent(call.Args[0])
		if tid == nil {
			return true
		}
		obj := pass.ObjectOf(tid)
		if obj == nil || declaredIn(obj, lit) {
			return true
		}
		pass.Reportf(call.Pos(),
			"append to %s from a goroutine makes element order depend on completion order; collect per-goroutine results and merge deterministically", obj.Name())
		return true
	})
}
