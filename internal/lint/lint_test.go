package lint_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"graphdse/internal/lint"
)

// want is one expectation parsed from a corpus `// want "regexp"` comment.
type want struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants scans the raw source of every corpus file for want comments.
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: bad want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquote %q: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out[pos.Filename] = append(out[pos.Filename], &want{line: pos.Line, re: re})
					rest = rest[len(q):]
				}
			}
		}
	}
	return out
}

// One loader for the whole test binary: the source importer re-checks the
// standard library per loader, so sharing it keeps the suite fast. Tests
// in one package run on one goroutine, so no locking is needed.
var (
	sharedLoader    *lint.Loader
	sharedLoaderErr error
	loaderOnce      sync.Once
)

func newCorpusLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := lint.FindModuleRoot(".")
		if err != nil {
			sharedLoaderErr = err
			return
		}
		sharedLoader, sharedLoaderErr = lint.NewLoader(root)
	})
	if sharedLoaderErr != nil {
		t.Fatal(sharedLoaderErr)
	}
	return sharedLoader
}

// runCorpus loads testdata/src/<dir> under the given import path, runs one
// analyzer, and diffs the diagnostics against the want comments.
func runCorpus(t *testing.T, dir, path string, analyzer *lint.Analyzer) {
	t.Helper()
	loader := newCorpusLoader(t)
	pkg, err := loader.LoadDirAs(path, filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("load corpus %s: %v", dir, err)
	}
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{analyzer})
	wants := collectWants(t, pkg)

	for _, d := range diags {
		ok := false
		for _, w := range wants[d.Pos.Filename] {
			if w.line == d.Pos.Line && !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: want %q, got no matching diagnostic", file, w.line, w.re)
			}
		}
	}
}

func TestCorpus(t *testing.T) {
	cases := []struct {
		dir      string
		path     string
		analyzer *lint.Analyzer
	}{
		{"atomicwrite", "corpus/atomicwrite", lint.AtomicWrite},
		{"atomicwrite_artifact", "corpus/internal/artifact", lint.AtomicWrite},
		{"errtaxonomy", "corpus/errtaxonomy", lint.ErrTaxonomy},
		{"ctxpropagate", "corpus/ctxpropagate", lint.CtxPropagate},
		{"ctxpropagate_main", "corpus/ctxpropagate_main", lint.CtxPropagate},
		{"allocbound", "corpus/allocbound", lint.AllocBound},
		{"leakygoroutine", "corpus/leakygoroutine", lint.LeakyGoroutine},
		{"httpctx", "corpus/httpctx", lint.HTTPCtx},
		{"ssecontract", "corpus/ssecontract", lint.SSEContract},
		{"determinism", "corpus/determinism", lint.Determinism},
		{"fsyncorder", "corpus/fsyncorder", lint.Fsyncorder},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) { runCorpus(t, c.dir, c.path, c.analyzer) })
	}
}

// TestLockdiscipline and TestAtomicmix get top-level names (rather than
// TestCorpus subtests) so CI's chaos job — which runs concurrency-sensitive
// tests under -race by name regexp — picks them up directly.
func TestLockdiscipline(t *testing.T) {
	runCorpus(t, "lockdiscipline", "corpus/lockdiscipline", lint.Lockdiscipline)
}

func TestAtomicmix(t *testing.T) {
	runCorpus(t, "atomicmix", "corpus/atomicmix", lint.Atomicmix)
}

// TestMalformedSuppressions pins that a //lint:ignore with a missing
// reason or an unknown analyzer name is itself a finding and suppresses
// nothing.
func TestMalformedSuppressions(t *testing.T) {
	loader := newCorpusLoader(t)
	pkg, err := loader.LoadDirAs("corpus/suppressbad", filepath.Join("testdata", "src", "suppressbad"))
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.AtomicWrite})
	var suppress, atomic int
	for _, d := range diags {
		switch d.Analyzer {
		case "suppress":
			suppress++
		case "atomicwrite":
			atomic++
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	if suppress != 2 {
		t.Errorf("malformed-suppression findings = %d, want 2 (missing reason + unknown analyzer):\n%s", suppress, render(diags))
	}
	if atomic != 2 {
		t.Errorf("atomicwrite findings = %d, want 2 (broken directives must not suppress):\n%s", atomic, render(diags))
	}
}

func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}

// TestLoaderPatterns pins the ./...-style pattern matching of the loader.
func TestLoaderPatterns(t *testing.T) {
	loader := newCorpusLoader(t)
	pkgs, err := loader.LoadAll("internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "graphdse/internal/lint" {
		t.Fatalf("LoadAll(internal/lint) = %v", paths(pkgs))
	}
	pkgs, err = loader.LoadAll("internal/lint/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("testdata must be skipped by the walker, got %v", paths(pkgs))
	}
}

func paths(pkgs []*lint.Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}

// TestRepoIsClean is the acceptance criterion as a test: the full suite
// over the whole module reports nothing beyond the committed baseline. A
// contract violation introduced anywhere in the tree fails this test even
// before CI's lint job runs; a baselined finding that disappears fails it
// too (the stale entry must be deleted), so the baseline only ever
// shrinks.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader := newCorpusLoader(t)
	baseline, err := lint.LoadBaseline(filepath.Join(loader.ModuleDir, "graphlint_baseline.json"))
	if err != nil {
		t.Fatalf("load committed baseline: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %v", paths(pkgs))
	}
	for _, w := range loader.Warnings() {
		t.Errorf("load warning (skipped package): %s", w)
	}
	active, baselined := baseline.Apply(lint.Run(pkgs, lint.All))
	for _, d := range active {
		t.Errorf("%s", d)
	}
	for _, d := range baselined {
		t.Logf("baselined: %s (reason: %s)", d, baseline.Reason(d))
	}
	for _, e := range baseline.Stale() {
		t.Errorf("stale baseline entry: %s in %s matched nothing — delete it", e.Analyzer, e.File)
	}
}
