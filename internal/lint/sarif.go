package lint

// SARIF 2.1.0 emission, the subset GitHub code scanning consumes: one run,
// one rule per analyzer, one result per finding with a physical location.
// Baselined findings are emitted at level "note" so they annotate the PR
// without failing the check; active findings are "error". encoding/json
// sorts map keys and the inputs arrive position-sorted from Run, so the
// bytes are deterministic for a given tree — CI can cache or diff them.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

const sarifSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifURI relativizes a diagnostic filename against the module root and
// normalizes it to the forward-slash form SARIF requires.
func sarifURI(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// WriteSARIF writes one SARIF run covering both active and baselined
// findings. root is the module root used to relativize paths; baseline may
// be nil. Rules are emitted for the full analyzer set so rule IDs resolve
// even on a clean tree.
func WriteSARIF(w io.Writer, root string, active, baselined []Diagnostic, baseline *Baseline) error {
	driver := sarifDriver{
		Name:  "graphlint",
		Rules: make([]sarifRule, 0, len(All)+2),
	}
	for _, a := range All {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// Pseudo-analyzers that Run can attribute findings to.
	driver.Rules = append(driver.Rules,
		sarifRule{ID: "suppress", ShortDescription: sarifMessage{Text: "malformed //lint:ignore directive"}},
		sarifRule{ID: "internal", ShortDescription: sarifMessage{Text: "analyzer crashed; finding is the crash itself"}},
	)

	results := make([]sarifResult, 0, len(active)+len(baselined))
	add := func(d Diagnostic, level, suffix string) {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   level,
			Message: sarifMessage{Text: d.Message + suffix},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(root, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	for _, d := range active {
		add(d, "error", "")
	}
	for _, d := range baselined {
		suffix := " [baselined]"
		if r := baseline.Reason(d); r != "" {
			suffix = " [baselined: " + r + "]"
		}
		add(d, "note", suffix)
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// jsonFinding is the machine-readable text-adjacent format: one object per
// finding, baselined ones flagged with their reason.
type jsonFinding struct {
	Analyzer  string `json:"analyzer"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

// WriteJSON writes the findings as a JSON array (never null: a clean tree
// is `[]`), active first, then baselined, both position-sorted.
func WriteJSON(w io.Writer, root string, active, baselined []Diagnostic, baseline *Baseline) error {
	out := make([]jsonFinding, 0, len(active)+len(baselined))
	for _, d := range active {
		out = append(out, jsonFinding{
			Analyzer: d.Analyzer,
			File:     sarifURI(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	for _, d := range baselined {
		out = append(out, jsonFinding{
			Analyzer:  d.Analyzer,
			File:      sarifURI(root, d.Pos.Filename),
			Line:      d.Pos.Line,
			Column:    d.Pos.Column,
			Message:   d.Message,
			Baselined: true,
			Reason:    baseline.Reason(d),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
