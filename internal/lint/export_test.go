package lint

// Test-only exports. SetCheckHook lets loader tests simulate a
// type-checker panic on a chosen package without needing a construct that
// actually crashes go/types.
func (l *Loader) SetCheckHook(h func(path string)) { l.checkHook = h }
