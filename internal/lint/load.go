package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. graphdse/internal/trace
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by file name
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module from source.
// Imports inside the module resolve to its directories; everything else
// (the standard library) is delegated to go/importer's source compiler.
// Loaded packages are cached, so shared dependencies type-check once.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles, which the go toolchain
	// rejects anyway but would otherwise recurse forever here.
	loading  map[string]bool
	warnings []LoadWarning
	// checkHook, when set, runs just before type-checking each package.
	// Tests use it to simulate a type-checker panic on demand.
	checkHook func(path string)
}

// A LoadWarning records a package the loader skipped instead of failing
// the whole run — the type checker panicked on it (historically: exotic
// generic instantiations). The lint run degrades to partial coverage with
// an explicit record rather than dying.
type LoadWarning struct {
	Path   string // import path of the skipped package
	Dir    string // its directory
	Reason string // why it was skipped
}

func (w LoadWarning) String() string {
	return fmt.Sprintf("skipped %s (%s): %s", w.Path, w.Dir, w.Reason)
}

// Warnings returns the structured warnings accumulated by LoadAll, in the
// order the packages were encountered.
func (l *Loader) Warnings() []LoadWarning { return l.warnings }

// errCheckPanic marks a type-checker panic converted into an error by the
// loader's panic isolation. LoadAll treats it as skippable.
var errCheckPanic = errors.New("type checker panicked")

// NewLoader builds a loader for the module rooted at dir (the directory
// containing go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from the first "module" directive.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// LoadAll loads every package under the module whose directory matches one
// of the ./...-style patterns (empty patterns means everything). Directories
// named testdata, hidden directories, and directories with no non-test Go
// files are skipped, mirroring the go tool.
func (l *Loader) LoadAll(patterns ...string) ([]*Package, error) {
	dirs, err := l.matchDirs(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			// A type-checker panic (recorded as a structured warning by
			// load) degrades that one package to "skipped"; everything
			// else still fails the run — a broken tree must not lint
			// clean by accident.
			if errors.Is(err, errCheckPanic) {
				continue
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// matchDirs expands patterns ("./...", "dir/...", "dir") into the sorted
// set of package directories they select.
func (l *Loader) matchDirs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = l.ModuleDir
			}
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.ModuleDir, pat)
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !recursive {
			if ok, err := hasGoFiles(pat); err != nil {
				return nil, err
			} else if ok {
				add(pat)
			}
			continue
		}
		err = filepath.WalkDir(pat, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if ok, err := hasGoFiles(path); err != nil {
				return err
			} else if ok {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	//lint:ignore atomicwrite the linter enumerates source trees, not durable spool state; fault injection has nothing to cover here
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && isLintedGoFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isLintedGoFile reports whether name is a Go source file the suite
// analyzes. Test files are excluded: the contracts govern production
// code paths, and tests legitimately use raw files, fresh contexts, and
// fire-and-forget goroutines inside t.Cleanup scopes.
func isLintedGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// LoadDir loads the package in dir under its natural import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s: outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// LoadDirAs loads the package in dir pretending it has the given import
// path. Tests use this to exercise path-sensitive analyzers (atomicwrite's
// internal/artifact exemption) against corpus directories.
func (l *Loader) LoadDirAs(path, dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	//lint:ignore atomicwrite the linter reads package sources, not durable spool state; fault injection has nothing to cover here
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isLintedGoFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		return l.importPkg(ipath)
	})}
	tpkg, err := l.check(&conf, path, files, info)
	if err != nil {
		if errors.Is(err, errCheckPanic) {
			l.warnings = append(l.warnings, LoadWarning{Path: path, Dir: dir, Reason: err.Error()})
		}
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check runs the type checker with panic isolation. go/types instantiates
// generics natively, but a panic on an exotic construct must degrade to a
// structured skip (instantiate-or-skip), not kill the lint run.
func (l *Loader) check(conf *types.Config, path string, files []*ast.File, info *types.Info) (tpkg *types.Package, err error) {
	defer func() {
		if r := recover(); r != nil {
			tpkg, err = nil, fmt.Errorf("%w: %v", errCheckPanic, r)
		}
	}()
	if l.checkHook != nil {
		l.checkHook(path)
	}
	return conf.Check(path, l.fset, files, info)
}

// importPkg resolves an import path during type checking: module-internal
// paths load from the module tree, everything else from the standard
// library's source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
