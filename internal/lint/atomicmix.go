package lint

// Atomicmix enforces the memory-model rule behind every counter the daemon
// exposes: a variable accessed through sync/atomic anywhere must be
// accessed through sync/atomic everywhere. Mixing `atomic.AddInt64(&x, 1)`
// on one path with a plain `x++` or `x == 0` on another is a data race the
// race detector only catches when a test happens to hit the interleaving;
// here it is a compile-time finding.
//
// The analysis is package-wide and def-use based: pass one collects every
// variable object whose address is taken as the first argument of a
// sync/atomic call; pass two flags any other read or write of those
// objects. Typed atomics (atomic.Int64 and friends) are immune by
// construction and are not tracked.

import (
	"go/ast"
	"go/types"
)

var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a variable touched via sync/atomic is never read or written non-atomically elsewhere",
	Run:  runAtomicmix,
}

// atomicFuncs are the sync/atomic entry points that take &x as their first
// argument.
var atomicFuncs = []string{
	"AddInt32", "AddInt64", "AddUint32", "AddUint64", "AddUintptr",
	"LoadInt32", "LoadInt64", "LoadUint32", "LoadUint64", "LoadUintptr", "LoadPointer",
	"StoreInt32", "StoreInt64", "StoreUint32", "StoreUint64", "StoreUintptr", "StorePointer",
	"SwapInt32", "SwapInt64", "SwapUint32", "SwapUint64", "SwapUintptr", "SwapPointer",
	"CompareAndSwapInt32", "CompareAndSwapInt64", "CompareAndSwapUint32",
	"CompareAndSwapUint64", "CompareAndSwapUintptr", "CompareAndSwapPointer",
}

func runAtomicmix(pass *Pass) {
	// Pass 1: every object reached as &obj in a sync/atomic call, plus the
	// exact identifier nodes used inside those calls (which are exempt from
	// pass 2).
	atomicObjs := map[types.Object]bool{}
	exempt := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(pass, call, "sync/atomic", atomicFuncs...) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			obj, id := addrTarget(pass, un.X)
			if obj == nil {
				return true
			}
			atomicObjs[obj] = true
			exempt[id] = true
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: any other mention of those objects is a mixed access. The
	// only non-access mentions are their declarations and further atomic
	// calls (whose identifiers are in the exempt set).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || !atomicObjs[obj] || exempt[id] {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s is accessed via sync/atomic elsewhere; this plain access races with it — use the atomic API (or a typed atomic) on every path", obj.Name())
			return true
		})
	}
}

// addrTarget resolves the object whose address is taken: the final field
// of a selector chain, or a plain variable. Returns the identifier that
// denotes it so the atomic call site itself can be exempted.
func addrTarget(pass *Pass, e ast.Expr) (types.Object, *ast.Ident) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.ObjectOf(e).(*types.Var); ok {
			return v, e
		}
	case *ast.SelectorExpr:
		if v := fieldObject(pass, e); v != nil {
			return v, e.Sel
		}
	}
	return nil, nil
}
