package lint

// Intraprocedural control-flow layer. The original graphlint analyzers are
// syntactic — they pattern-match the AST of one statement at a time. The
// flow-sensitive analyzers (determinism, lockdiscipline, atomicmix,
// fsyncorder) need more: "is this fsync on every path before that rename",
// "which mutexes are held at this field access". This file gives them a
// small, self-contained basic-block CFG per function body, dominator and
// post-dominator sets over it, and a forward dataflow driver — all still on
// nothing but go/ast and go/token.
//
// The CFG is deliberately modest: one synthetic entry and exit, blocks
// holding the AST nodes evaluated in order, and edges for if/for/range/
// switch/type-switch/select/labeled-branch control flow. panic(...) and
// calls that never return (os.Exit, log.Fatal*) terminate their block into
// the exit, so must-analyses do not propagate facts across paths that never
// rejoin. goto is supported through lazily created label blocks.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: the statements and expressions evaluated in
// it, in source order, plus its successor edges.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
	preds []*cfgBlock
}

func (b *cfgBlock) addSucc(s *cfgBlock) {
	if s == nil {
		return
	}
	for _, old := range b.succs {
		if old == s {
			return
		}
	}
	b.succs = append(b.succs, s)
	s.preds = append(s.preds, b)
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock
}

// loopScope tracks the jump targets of one enclosing loop or switch for
// break/continue resolution, with its label ("" when unlabeled).
type loopScope struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select scopes
}

type cfgBuilder struct {
	g      *funcCFG
	cur    *cfgBlock // nil while the walker is in dead code
	scopes []loopScope
	labels map[string]*cfgBlock
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g, labels: map[string]*cfgBlock{}}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.cur.addSucc(g.exit)
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// labelBlock returns (creating on first reference) the block a label names,
// so forward gotos resolve before the labeled statement is reached.
func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock()
		b.labels[name] = blk
	}
	return blk
}

// emit appends a node to the current block (dropped in dead code).
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

// startBlock makes blk current, linking it from the previous block when the
// previous block falls through.
func (b *cfgBuilder) startBlock(blk *cfgBlock) {
	if b.cur != nil {
		b.cur.addSucc(blk)
	}
	b.cur = blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the enclosing LabeledStmt's name when
// the statement is its direct body (so `L: for {...}` registers L on the
// loop's scope).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		b.startBlock(target)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		if condBlk != nil {
			condBlk.addSucc(thenBlk)
		}
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(after)
		}
		if s.Else != nil {
			elseBlk := b.newBlock()
			if condBlk != nil {
				condBlk.addSucc(elseBlk)
			}
			b.cur = elseBlk
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.cur.addSucc(after)
			}
		} else if condBlk != nil {
			condBlk.addSucc(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		cond := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := cond
		if s.Post != nil {
			post = b.newBlock()
		}
		b.startBlock(cond)
		if s.Cond != nil {
			b.emit(s.Cond)
			cond.addSucc(after)
		}
		cond.addSucc(body)
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if b.cur != nil {
			b.cur.addSucc(post)
		}
		if s.Post != nil {
			b.cur = post
			b.emit(s.Post)
			post.addSucc(cond)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		// The range head: X evaluation plus key/value assignment. The loop
		// body is its own block — emitting the whole RangeStmt here would
		// double-count its subtree.
		b.emit(s.X)
		if s.Key != nil {
			b.emit(s.Key)
		}
		if s.Value != nil {
			b.emit(s.Value)
		}
		head.addSucc(body)
		head.addSucc(after)
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if b.cur != nil {
			b.cur.addSucc(head)
		}
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var bodyList []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, tag, bodyList = sw.Init, sw.Tag, sw.Body.List
		case *ast.TypeSwitchStmt:
			init, tag, bodyList = sw.Init, sw.Assign, sw.Body.List
		}
		if init != nil {
			b.emit(init)
		}
		if tag != nil {
			b.emit(tag)
		}
		head := b.cur
		after := b.newBlock()
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: after})
		var clauseBlocks []*cfgBlock
		var clauses []*ast.CaseClause
		hasDefault := false
		for _, cs := range bodyList {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			if head != nil {
				head.addSucc(blk)
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauses = append(clauses, cc)
		}
		for i, cc := range clauses {
			b.cur = clauseBlocks[i]
			for _, e := range cc.List {
				b.emit(e)
			}
			fallsThrough := false
			for _, cs := range cc.Body {
				if br, ok := cs.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					fallsThrough = true
					continue
				}
				b.stmt(cs, "")
			}
			if b.cur != nil {
				if fallsThrough && i+1 < len(clauseBlocks) {
					b.cur.addSucc(clauseBlocks[i+1])
				} else {
					b.cur.addSucc(after)
				}
			}
		}
		if !hasDefault && head != nil {
			head.addSucc(after)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: after})
		for _, cs := range s.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			if head != nil {
				head.addSucc(blk)
			}
			b.cur = blk
			if cc.Comm != nil {
				b.emit(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.cur.addSucc(after)
			}
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.emit(s)
		if b.cur != nil {
			b.cur.addSucc(b.g.exit)
		}
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			if b.cur != nil {
				b.cur.addSucc(b.labelBlock(s.Label.Name))
			}
			b.cur = nil
		case token.BREAK:
			if b.cur != nil {
				if t := b.findScope(s.Label, true); t != nil {
					b.cur.addSucc(t)
				}
			}
			b.cur = nil
		case token.CONTINUE:
			if b.cur != nil {
				if t := b.findScope(s.Label, false); t != nil {
					b.cur.addSucc(t)
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// handled inside the switch lowering; reaching here means a
			// malformed tree — drop to dead code rather than crash.
			b.cur = nil
		}

	default:
		b.emit(s)
		if isTerminalStmt(s) {
			if b.cur != nil {
				b.cur.addSucc(b.g.exit)
			}
			b.cur = nil
		}
	}
}

// findScope resolves a break/continue target. label nil means innermost.
func (b *cfgBuilder) findScope(label *ast.Ident, isBreak bool) *cfgBlock {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if label != nil && sc.label != label.Name {
			continue
		}
		if isBreak {
			return sc.breakTo
		}
		if sc.continueTo != nil {
			return sc.continueTo
		}
		if label != nil {
			return nil
		}
	}
	return nil
}

// isTerminalStmt reports whether the statement never falls through: a
// panic(...) or a call to a function the runtime never returns from.
func isTerminalStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && fn.Sel.Name == "Exit":
				return true
			case pkg.Name == "log" && (fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf" || fn.Sel.Name == "Fatalln"):
				return true
			}
		}
	}
	return false
}

// bitset over block indices, for dominator sets.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

func (b bitset) copyFrom(o bitset) { copy(b, o) }

// intersect ands o into b, reporting whether b changed.
func (b bitset) intersect(o bitset) bool {
	changed := false
	for i := range b {
		nv := b[i] & o[i]
		if nv != b[i] {
			b[i] = nv
			changed = true
		}
	}
	return changed
}

// dominators computes, for every block, the set of blocks that dominate it
// (every path from entry passes through them). The classic iterative
// algorithm is plenty for function-sized graphs.
func (g *funcCFG) dominators() []bitset {
	n := len(g.blocks)
	dom := make([]bitset, n)
	for i := range dom {
		dom[i] = newBitset(n)
		if i == g.entry.index {
			dom[i].set(i)
		} else {
			dom[i].fill()
		}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range g.blocks {
			if blk == g.entry {
				continue
			}
			nv := newBitset(n)
			nv.fill()
			reached := false
			for _, p := range blk.preds {
				nv.intersect(dom[p.index])
				reached = true
			}
			if !reached {
				// Unreachable block: dominated by everything, vacuously.
				continue
			}
			nv.set(blk.index)
			if dom[blk.index].intersect(nv) {
				changed = true
			}
			// intersect only shrinks; also absorb any bits nv added (self).
			if !dom[blk.index].has(blk.index) {
				dom[blk.index].set(blk.index)
				changed = true
			}
		}
	}
	return dom
}

// postDominators is dominators on the reversed graph from exit: the set of
// blocks every path from b to the exit passes through.
func (g *funcCFG) postDominators() []bitset {
	n := len(g.blocks)
	pdom := make([]bitset, n)
	for i := range pdom {
		pdom[i] = newBitset(n)
		if i == g.exit.index {
			pdom[i].set(i)
		} else {
			pdom[i].fill()
		}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range g.blocks {
			if blk == g.exit {
				continue
			}
			nv := newBitset(n)
			nv.fill()
			reached := false
			for _, s := range blk.succs {
				nv.intersect(pdom[s.index])
				reached = true
			}
			if !reached {
				continue
			}
			nv.set(blk.index)
			if pdom[blk.index].intersect(nv) {
				changed = true
			}
			if !pdom[blk.index].has(blk.index) {
				pdom[blk.index].set(blk.index)
				changed = true
			}
		}
	}
	return pdom
}

// nodeSite locates one AST node inside a CFG: its block and its position in
// the block's node list.
type nodeSite struct {
	block *cfgBlock
	index int
	pos   token.Pos
}

// sites finds every node matching pred inside the CFG, walking each
// block's nodes (and their subtrees) in order. Nested function literals
// are skipped: they are separate functions with their own CFGs.
func (g *funcCFG) sites(pred func(ast.Node) bool) []nodeSite {
	var out []nodeSite
	for _, blk := range g.blocks {
		for i, n := range blk.nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if m == nil {
					return false
				}
				if _, isLit := m.(*ast.FuncLit); isLit {
					return false
				}
				if pred(m) {
					out = append(out, nodeSite{block: blk, index: i, pos: m.Pos()})
				}
				return true
			})
		}
	}
	return out
}

// dominatesSite reports whether site a dominates site b: a's block strictly
// dominates b's, or they share a block and a comes earlier.
func dominatesSite(dom []bitset, a, b nodeSite) bool {
	if a.block == b.block {
		return a.index < b.index || (a.index == b.index && a.pos < b.pos)
	}
	return dom[b.block.index].has(a.block.index)
}

// funcCFGs builds a CFG for every function declaration and function literal
// in the file set of the pass, keyed by the *ast.BlockStmt body. Analyzers
// that walk function-by-function build their own; this helper exists for
// tests.
func funcCFGs(files []*ast.File) map[*ast.BlockStmt]*funcCFG {
	out := map[*ast.BlockStmt]*funcCFG{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out[n.Body] = buildCFG(n.Body)
				}
			case *ast.FuncLit:
				out[n.Body] = buildCFG(n.Body)
			}
			return true
		})
	}
	return out
}
