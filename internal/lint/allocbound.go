package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocBound enforces the PR 3 allocation-bomb contract: a make() whose
// length or capacity derives from a decoded, untrusted integer (varint
// counts, fixed-width header fields, parsed ASCII numbers) must be
// dominated by a plausibility-cap check, so a corrupt 8-byte prefix can
// never OOM the process before the tiny body runs out.
//
// The analysis is intraprocedural and syntactic in spirit:
//
//   - a variable is tainted when assigned (directly or transitively) from
//     binary.ReadUvarint/ReadVarint/Read, a binary.ByteOrder Uint16/32/64
//     decode, or strconv.Atoi/ParseInt/ParseUint/ParseFloat;
//   - a make() len/cap argument mentioning a tainted variable is a finding
//     unless an earlier if-statement in the same function compares that
//     variable with a relational operator (the cap check), or the argument
//     is passed through a min()-shaped clamp (builtin min or a function
//     whose name starts with "min").
//
// The heuristic is deliberately conservative in what it accepts: equality
// tests and err != nil checks do not count as caps.
var AllocBound = &Analyzer{
	Name: "allocbound",
	Doc:  "make() sized by a decoded integer must be dominated by a plausibility-cap check",
	Run:  runAllocBound,
}

func runAllocBound(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkAllocsIn(pass, n.Body)
				}
				return false // literals inside are walked by checkAllocsIn
			case *ast.FuncLit:
				checkAllocsIn(pass, n.Body)
				return false
			}
			return true
		})
	}
}

// checkAllocsIn analyzes one function body. Nested function literals are
// analyzed as part of the enclosing body: they close over the same
// variables, and a cap check in the parent dominates the literal too.
func checkAllocsIn(pass *Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)
	checked := make(map[types.Object]token.Pos) // earliest relational check

	// Pass 1, in source order: propagate taint through assignments and
	// record relational comparisons that act as plausibility caps.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			taintAssign(pass, tainted, n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range n.Names {
				lhs = append(lhs, name)
			}
			taintAssign(pass, tainted, lhs, n.Values)
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				for _, side := range [...]ast.Expr{n.X, n.Y} {
					for obj := range referencedObjects(pass, side) {
						if tainted[obj] {
							if _, ok := checked[obj]; !ok {
								checked[obj] = n.Pos()
							}
						}
					}
				}
			}
		}
		return true
	})

	// Pass 2: audit every make() len/cap argument.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, ok := pass.ObjectOf(id).(*types.Builtin); !ok {
			return true
		}
		for _, arg := range call.Args[1:] { // args[0] is the type
			auditMakeArg(pass, tainted, checked, call, arg)
		}
		return true
	})
}

// taintAssign marks each LHS integer variable tainted when the matching
// RHS is a decode call or mentions an already-tainted variable.
func taintAssign(pass *Pass, tainted map[types.Object]bool, lhs, rhs []ast.Expr) {
	if len(rhs) == 0 {
		return
	}
	dirty := func(e ast.Expr) bool {
		if isDecodeCall(pass, e) {
			return true
		}
		for obj := range referencedObjects(pass, e) {
			if tainted[obj] {
				return true
			}
		}
		return false
	}
	mark := func(l ast.Expr) {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.ObjectOf(id)
		if obj == nil || !isIntegerVar(obj) {
			return
		}
		tainted[obj] = true
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		// n, err := binary.ReadUvarint(br): every integer LHS is tainted.
		if dirty(rhs[0]) {
			for _, l := range lhs {
				mark(l)
			}
		}
		return
	}
	for i, l := range lhs {
		if i < len(rhs) && dirty(rhs[i]) {
			mark(l)
		}
	}
}

func isIntegerVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isDecodeCall reports whether e contains a call that produces an
// attacker-controlled integer.
func isDecodeCall(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(pass, call, "encoding/binary",
			"ReadUvarint", "ReadVarint", "Read", "Uint16", "Uint32", "Uint64", "Varint", "Uvarint") ||
			isPkgFunc(pass, call, "strconv", "Atoi", "ParseInt", "ParseUint", "ParseFloat") {
			found = true
			return false
		}
		return true
	})
	return found
}

// referencedObjects collects every variable object mentioned in e.
func referencedObjects(pass *Pass, e ast.Expr) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.ObjectOf(id); obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// auditMakeArg reports a finding when arg mentions a tainted variable with
// no dominating cap check and no min()-clamp around the taint.
func auditMakeArg(pass *Pass, tainted map[types.Object]bool, checked map[types.Object]token.Pos, call *ast.CallExpr, arg ast.Expr) {
	if isMinClamped(pass, arg) {
		return
	}
	for obj := range referencedObjects(pass, arg) {
		if !tainted[obj] {
			continue
		}
		if pos, ok := checked[obj]; ok && pos < call.Pos() {
			continue
		}
		pass.Reportf(call.Pos(),
			"make() sized by decoded value %s with no plausibility-cap check before the allocation", obj.Name())
		return
	}
}

// isMinClamped reports whether arg is (or is wrapped in) a min-style clamp:
// the builtin min, or any function whose name begins with "min" (minU64 and
// friends in internal/graph).
func isMinClamped(pass *Pass, arg ast.Expr) bool {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pass.ObjectOf(fn).(type) {
		case *types.Builtin:
			return fn.Name == "min"
		case *types.Func:
			return strings.HasPrefix(strings.ToLower(fn.Name), "min")
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.ObjectOf(fn.Sel).(*types.Func); ok {
			return strings.HasPrefix(strings.ToLower(obj.Name()), "min")
		}
	}
	return false
}
