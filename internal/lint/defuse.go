package lint

// Def-use helpers shared by the flow-sensitive analyzers: canonical keys
// for lvalue-ish expressions (so `st.mu` in one statement and `st.mu` in
// another compare equal), and object def/use extraction over statements.

import (
	"go/ast"
	"go/types"
)

// exprKey renders a selector chain rooted at an identifier as a canonical
// dotted string: `mu` -> "mu", `st.mu` -> "st.mu", `l.hub.mu` -> "l.hub.mu".
// Pointer derefs are transparent. Anything else (map index, call result,
// etc.) has no stable identity and yields "".
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		return exprKey(e.X)
	}
	return ""
}

// baseIdent returns the root identifier of a selector chain, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return baseIdent(e.X)
	case *ast.StarExpr:
		return baseIdent(e.X)
	case *ast.UnaryExpr:
		return baseIdent(e.X)
	case *ast.IndexExpr:
		return baseIdent(e.X)
	}
	return nil
}

// assignTargets collects the variable objects a statement assigns to
// (plain and := assignments, incdec, and range key/value).
func assignTargets(pass *Pass, s ast.Stmt) []types.Object {
	var out []types.Object
	add := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				out = append(out, obj)
			}
		}
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			add(l)
		}
	case *ast.IncDecStmt:
		add(s.X)
	case *ast.RangeStmt:
		if s.Key != nil {
			add(s.Key)
		}
		if s.Value != nil {
			add(s.Value)
		}
	}
	return out
}

// declaredIn reports whether obj's declaration position falls inside node
// (used to tell loop-local slices from ones that outlive the loop).
func declaredIn(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// fieldObject resolves the field a selector expression denotes, or nil when
// the selector is not a field access.
func fieldObject(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	// Package-qualified or unresolved selectors land here.
	return nil
}
