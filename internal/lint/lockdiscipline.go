package lint

// Lockdiscipline enforces the daemon's mutex contract flow-sensitively:
//
//   - a struct field annotated `// guarded by <mu>` (in its doc or line
//     comment; <mu> names a sibling mutex field) may only be read or
//     written at program points where that mutex is held on every path —
//     a forward must-analysis of Lock/RLock/Unlock/RUnlock over the CFG;
//   - while any mutex is held, the code must not perform an operation that
//     can block on the outside world: an fsync (a Sync/SyncDir call), a
//     blocking channel send (one not inside a select with a default), or
//     an http.ResponseWriter / http.ResponseController write. This is the
//     dsed hub's "never block the scheduler" rule: the publisher evicts a
//     slow subscriber instead of ever waiting on one.
//
// Conventions the analysis understands:
//
//   - `defer mu.Unlock()` leaves the mutex held for the rest of the
//     function (the deferred unlock runs at return, not at the defer);
//   - a method whose name ends in "Locked" asserts — per the repo's naming
//     convention — that its caller holds every mutex of the receiver, so
//     its receiver's annotated mutexes are treated as held at entry;
//   - the analysis is intraprocedural: it sees locks taken in this
//     function body only. Helpers that require a held lock must carry the
//     Locked suffix.

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

var Lockdiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "`// guarded by <mu>` fields are only touched with the mutex held, and no mutex is held across fsync/channel-send/response writes",
	Run:  runLockdiscipline,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// guardedField records one annotated field: its object and the name of the
// sibling mutex that guards it.
type guardedField struct {
	mu string
}

func runLockdiscipline(pass *Pass) {
	guarded := collectGuardedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockFlow(pass, fn, guarded)
		}
	}
}

// collectGuardedFields scans struct declarations for `guarded by <mu>`
// field annotations, keyed by the field's types.Var object.
func collectGuardedFields(pass *Pass) map[*types.Var]guardedField {
	out := map[*types.Var]guardedField{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.ObjectOf(name).(*types.Var); ok {
						out[v] = guardedField{mu: mu}
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's comments.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockState is the must-held set at one program point: canonical mutex
// keys ("st.mu") mapped to true. The meet over paths is set intersection.
type lockState map[string]bool

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s lockState) equal(o lockState) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

func intersectStates(a, b lockState) lockState {
	out := lockState{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// checkLockFlow analyzes one function: fixpoint lock-state propagation over
// the CFG, then a walk of every block under its entry state.
func checkLockFlow(pass *Pass, fn *ast.FuncDecl, guarded map[*types.Var]guardedField) {
	g := buildCFG(fn.Body)

	entry := lockState{}
	if strings.HasSuffix(fn.Name.Name, "Locked") && fn.Recv != nil && len(fn.Recv.List) == 1 {
		// The Locked suffix asserts the caller holds the receiver's locks.
		if len(fn.Recv.List[0].Names) == 1 {
			recv := fn.Recv.List[0].Names[0].Name
			for _, mu := range receiverMutexNames(pass, fn) {
				entry[recv+"."+mu] = true
			}
		}
	}

	// Blocking channel sends: a send inside a select that has a default
	// clause never blocks, so pre-compute the exempt set.
	nonBlockingSends := map[ast.Node]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					nonBlockingSends[send] = true
				}
			}
		}
		return true
	})

	// Fixpoint: in-state per block (must analysis, meet = intersection).
	in := make([]lockState, len(g.blocks))
	for i := range in {
		in[i] = nil // unvisited
	}
	in[g.entry.index] = entry
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := applyBlock(pass, blk, in[blk.index].clone(), nil, nil, nil)
		for _, s := range blk.succs {
			var nv lockState
			if in[s.index] == nil {
				nv = out.clone()
			} else {
				nv = intersectStates(in[s.index], out)
			}
			if in[s.index] == nil || !nv.equal(in[s.index]) {
				in[s.index] = nv
				work = append(work, s)
			}
		}
	}

	// Report pass: re-run each reachable block's transfer with checks on.
	for _, blk := range g.blocks {
		if in[blk.index] == nil {
			continue
		}
		applyBlock(pass, blk, in[blk.index].clone(), guarded, nonBlockingSends, fn)
	}
}

// receiverMutexNames lists the mutex-typed fields of fn's receiver struct.
func receiverMutexNames(pass *Pass, fn *ast.FuncDecl) []string {
	t := pass.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutexType(f.Type()) {
			out = append(out, f.Name())
		}
	}
	return out
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// applyBlock runs the transfer function over one block's nodes in order.
// When guarded is non-nil it also reports violations (the fixpoint pass
// passes nil to stay silent while states are still converging).
func applyBlock(pass *Pass, blk *cfgBlock, state lockState, guarded map[*types.Var]guardedField, nonBlockingSends map[ast.Node]bool, fn *ast.FuncDecl) lockState {
	reporting := guarded != nil
	for _, n := range blk.nodes {
		// Walk the node's subtree in source order, updating lock state at
		// each Lock/Unlock and checking accesses between them.
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				// A nested literal runs later (or concurrently); its body
				// has its own discipline and is analyzed separately only if
				// it is a *Locked method — which literals cannot be. Skip.
				return false
			case *ast.DeferStmt:
				// A deferred unlock does not release here; a deferred lock
				// (pathological) is ignored too.
				return false
			case *ast.CallExpr:
				if key, op := lockOp(pass, m); key != "" {
					switch op {
					case "Lock", "RLock":
						state[key] = true
					case "Unlock", "RUnlock":
						delete(state, key)
					}
					return false
				}
				if reporting && len(state) > 0 {
					if name, blocking := blockingCall(pass, m); blocking {
						pass.Reportf(m.Pos(),
							"%s while holding %s: a mutex must never be held across an operation that can block on the outside world", name, heldList(state))
					}
				}
			case *ast.SendStmt:
				if reporting && len(state) > 0 && !nonBlockingSends[m] {
					pass.Reportf(m.Pos(),
						"blocking channel send while holding %s; use a select with a default so a slow receiver cannot stall the lock holder", heldList(state))
				}
			case *ast.SelectorExpr:
				if reporting {
					checkGuardedAccess(pass, m, state, guarded)
				}
			}
			return true
		})
	}
	return state
}

// lockOp recognizes mu.Lock()/RLock()/Unlock()/RUnlock() calls on a
// keyable mutex expression, returning the canonical key and the op.
func lockOp(pass *Pass, call *ast.CallExpr) (key, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	if t := pass.TypeOf(sel.X); t == nil || !isMutexType(t) {
		return "", ""
	}
	k := exprKey(sel.X)
	if k == "" {
		return "", ""
	}
	return k, sel.Sel.Name
}

// blockingCall recognizes operations that may block the outside world:
// fsyncs and HTTP response writes.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, isMethod := pass.Info.Selections[sel]; !isMethod {
		return "", false
	}
	switch sel.Sel.Name {
	case "Sync", "SyncDir":
		return "fsync (" + sel.Sel.Name + ")", true
	case "Write", "WriteString", "Flush":
		if t := pass.TypeOf(sel.X); isResponseWriterish(t) {
			return "HTTP response " + sel.Sel.Name, true
		}
	}
	return "", false
}

// isResponseWriterish reports whether t is http.ResponseWriter or
// *http.ResponseController.
func isResponseWriterish(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" &&
		(obj.Name() == "ResponseWriter" || obj.Name() == "ResponseController")
}

// checkGuardedAccess reports a guarded-field access whose guard is not in
// the current must-held set.
func checkGuardedAccess(pass *Pass, sel *ast.SelectorExpr, state lockState, guarded map[*types.Var]guardedField) {
	fieldVar := fieldObject(pass, sel)
	if fieldVar == nil {
		return
	}
	gf, ok := guarded[fieldVar]
	if !ok {
		return
	}
	base := exprKey(sel.X)
	if base == "" {
		// No stable identity for the receiver expression; the guard cannot
		// be matched, so stay silent rather than guess.
		return
	}
	need := base + "." + gf.mu
	if state[need] {
		return
	}
	pass.Reportf(sel.Pos(),
		"field %s is guarded by %s, which is not held on every path to this access", sel.Sel.Name, need)
}

// heldList renders the held set for messages, smallest key first for
// deterministic output.
func heldList(state lockState) string {
	var keys []string
	for k := range state {
		keys = append(keys, k)
	}
	// insertion sort; the set is tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return strings.Join(keys, ", ")
}
