package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// SSEContract enforces the streaming-handler contract from the durable
// job-event work. A streaming handler — a function that receives an
// *http.Request and declares the "text/event-stream" content type — holds a
// connection open indefinitely, which makes three disciplines mandatory:
//
//   - Flush after writing. SSE frames sit in the ResponseWriter's buffer
//     until flushed; a handler that never calls Flush/FlushError streams
//     nothing until the connection closes, defeating the format.
//   - Select on r.Context().Done(). A long-lived handler that does not
//     watch the request context outlives every disconnect and drain,
//     pinning its subscriber slot and goroutine forever.
//   - Send periodic heartbeats. Without a ticker-driven keepalive, neither
//     side of an idle stream can tell a quiet peer from a dead one, and
//     intermediaries silently reap the connection.
//
// The three checks are structural, not data-flow: any Flush call, any
// select receiving from a .Done() channel, and any time.NewTicker/Tick/
// After in the handler body (closures included) satisfy them.
var SSEContract = &Analyzer{
	Name: "ssecontract",
	Doc:  "SSE handlers flush after writes, select on r.Context().Done(), and send heartbeats",
	Run:  runSSEContract,
}

func runSSEContract(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !fieldListTakesRequest(pass, fd.Type.Params) {
				continue
			}
			if !declaresEventStream(fd.Body) {
				continue
			}
			checkSSEBody(pass, fd.Name.Pos(), fd.Body)
		}
	}
}

// declaresEventStream reports whether the body contains the SSE content
// type as a string literal — the marker of a streaming handler.
func declaresEventStream(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if strings.Contains(lit.Value, "text/event-stream") {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkSSEBody reports every missing leg of the streaming contract at pos.
func checkSSEBody(pass *Pass, pos token.Pos, body *ast.BlockStmt) {
	var flushes, selectsDone, heartbeats bool
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Flush", "FlushError":
					flushes = true
				}
			}
			if isPkgFunc(pass, n, "time", "NewTicker", "Tick", "After") {
				heartbeats = true
			}
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if commReceivesDone(cc.Comm) {
					selectsDone = true
				}
			}
		}
		return true
	})
	if !flushes {
		pass.Reportf(pos,
			"streaming handler must flush after each write: SSE frames sit in the response buffer until Flush/FlushError")
	}
	if !selectsDone {
		pass.Reportf(pos,
			"streaming handler must select on r.Context().Done(): without it the stream outlives disconnects and server drain")
	}
	if !heartbeats {
		pass.Reportf(pos,
			"streaming handler must send periodic heartbeats (time.NewTicker/Tick/After): an idle stream is indistinguishable from a dead peer")
	}
}

// commReceivesDone reports whether a select comm clause receives from a
// channel produced by a .Done() call — the shape of both r.Context().Done()
// and a derived context's Done().
func commReceivesDone(comm ast.Stmt) bool {
	var rhs ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		rhs = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
	}
	un, ok := ast.Unparen(rhs).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(un.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}
