package lint

// Fsyncorder enforces the PR 3 atomic-write contract flow-sensitively. The
// atomicwrite analyzer bans raw renames outside internal/artifact by path;
// this analyzer checks the ordering inside whatever code is allowed to
// rename: a function that creates a temp file and renames it into place
// must fsync the file on every path before the rename (a dominating Sync
// call in the CFG), and must fsync the parent directory after the rename
// (a SyncDir call downstream of it) so the new name itself survives a
// power cut.
//
// Scope: a function body is in scope when it calls a rename (os.Rename or
// any two-argument Rename method) and also either creates a temp file
// (os.CreateTemp or any CreateTemp method — the FS seam) or fsyncs
// something — i.e. it is visibly part of a write-then-publish sequence.
// Functions that only move existing files (corrupt-record set-aside,
// quarantine) create no new bytes and are out of scope: their content was
// already durable.

import (
	"go/ast"
)

var Fsyncorder = &Analyzer{
	Name: "fsyncorder",
	Doc:  "a temp-write → rename sequence has a dominating file fsync and a directory fsync after the rename",
	Run:  runFsyncorder,
}

func runFsyncorder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFsyncOrder(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFsyncOrder(pass, n.Body)
			}
			return true
		})
	}
}

// checkFsyncOrder analyzes one function body (nested literals are their
// own scopes and are skipped by the CFG's site walker).
func checkFsyncOrder(pass *Pass, body *ast.BlockStmt) {
	g := buildCFG(body)

	renames := g.sites(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		return ok && isNamedCall(pass, call, "Rename") && len(call.Args) == 2
	})
	if len(renames) == 0 {
		return
	}
	createTemps := g.sites(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		return ok && isNamedCall(pass, call, "CreateTemp")
	})
	syncs := g.sites(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		return ok && isNamedCall(pass, call, "Sync") && len(call.Args) == 0
	})
	if len(createTemps) == 0 && len(syncs) == 0 {
		// A pure move of already-durable bytes; nothing to order.
		return
	}
	dirSyncs := g.sites(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		return ok && isNamedCall(pass, call, "SyncDir")
	})

	dom := g.dominators()
	for _, ren := range renames {
		// Rule 1: some fsync of the written file dominates the rename — on
		// every path from entry to this rename, the data was flushed first.
		dominated := false
		for _, syn := range syncs {
			if dominatesSite(dom, syn, ren) {
				dominated = true
				break
			}
		}
		if !dominated {
			pass.Reportf(ren.pos,
				"rename of a temp file with no dominating fsync: on some path the data is renamed into place before it is durable")
		}
		// Rule 2: the parent directory is fsynced after the rename on the
		// success path — otherwise the new name itself can vanish in a
		// power cut even though the inode was flushed.
		followed := false
		for _, ds := range dirSyncs {
			if ds.pos > ren.pos {
				followed = true
				break
			}
		}
		if !followed {
			pass.Reportf(ren.pos,
				"rename not followed by a directory fsync (SyncDir): the new name is not durable until the directory entry is flushed")
		}
	}
}

// isNamedCall reports whether the call's function is a selector or ident
// with the given name (os.CreateTemp, fsys.Rename, f.Sync, ...). The FS
// seam means renames and syncs arrive through interface methods, so this
// matches by name rather than by package of origin.
func isNamedCall(pass *Pass, call *ast.CallExpr, name string) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name == name
	case *ast.Ident:
		return fn.Name == name
	}
	return false
}
