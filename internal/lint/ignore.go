package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A suppression is one well-formed //lint:ignore comment. It silences
// findings of the named analyzers on the comment's own line and on the
// line directly below it, so both trailing and preceding placements work:
//
//	os.WriteFile(p, b, 0o644) //lint:ignore atomicwrite bootstrap file predates the artifact layer
//
//	//lint:ignore ctxpropagate documented top-level wrapper: mints the root context
//	return RunWorkflowContext(context.Background(), opts)
type suppression struct {
	analyzers []string
	line      int
	file      string
}

type suppressionSet []suppression

const ignorePrefix = "lint:ignore"

// matches reports whether a finding by analyzer at p is suppressed.
func (s suppressionSet) matches(analyzer string, p token.Position) bool {
	for _, sup := range s {
		if sup.file != p.Filename {
			continue
		}
		if p.Line != sup.line && p.Line != sup.line+1 {
			continue
		}
		for _, a := range sup.analyzers {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}

// collectSuppressions scans every comment in the files for //lint:ignore
// directives. A directive must name at least one analyzer and give a
// non-empty reason; anything else is reported as a finding of the
// pseudo-analyzer "suppress" so a lazy suppression cannot silently rot.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressionSet, []Diagnostic) {
	var sups suppressionSet
	var bad []Diagnostic
	known := make(map[string]bool)
	for _, a := range All {
		known[a.Name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				malformed := func(msg string) {
					bad = append(bad, Diagnostic{
						Analyzer: "suppress",
						Pos:      pos,
						Message:  msg,
					})
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					malformed("lint:ignore needs an analyzer name and a reason")
					continue
				}
				names := strings.Split(fields[0], ",")
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				if reason == "" {
					malformed("lint:ignore " + fields[0] + " is missing the mandatory reason")
					continue
				}
				valid := true
				for _, n := range names {
					if !known[n] {
						malformed("lint:ignore names unknown analyzer " + n)
						valid = false
						break
					}
				}
				if !valid {
					continue
				}
				sups = append(sups, suppression{
					analyzers: names,
					line:      pos.Line,
					file:      pos.Filename,
				})
			}
		}
	}
	return sups, bad
}
