package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrTaxonomy enforces the guard.Class error-taxonomy contract: sentinel
// errors (package-level `var ErrX = ...` values) flow through wrapped
// chains, so they must be tested with errors.Is, never `==`/`!=`, and a
// fmt.Errorf that carries an error must wrap it with %w so the sentinel
// stays visible to errors.Is further up the stack.
//
// Comparisons against nil and against sentinels not named Err* (io.EOF's
// documented non-wrapped contract) are allowed. An Errorf that already
// wraps one error with %w may annotate a second cause with %v — that is
// the established "%w: detail: %v" boundary idiom.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "sentinel Err* values must be matched with errors.Is, and boundary fmt.Errorf must wrap with %w",
	Run:  runErrTaxonomy,
}

func runErrTaxonomy(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range [...]ast.Expr{n.X, n.Y} {
					if name, ok := sentinelName(pass, side); ok {
						pass.Reportf(n.Pos(),
							"sentinel comparison %s %s defeats wrapped error chains; use errors.Is", n.Op, name)
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(pass.TypeOf(n.Tag)) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := sentinelName(pass, e); ok {
							pass.Reportf(e.Pos(),
								"switch case on sentinel %s compares with ==; use errors.Is", name)
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

// sentinelName reports whether e denotes a package-level error variable
// named Err*, the shape of every sentinel in the tree (guard.ErrStalled,
// trace.ErrFormat, artifact.ErrCorrupt, ml.ErrNotFitted, ...).
func sentinelName(pass *Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || !strings.HasPrefix(v.Name(), "Err") {
		return "", false
	}
	// Package-level: parent scope is the package scope.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !isErrorType(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// checkErrorfWrap flags fmt.Errorf calls that receive an error argument
// but whose constant format string contains no %w verb.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: nothing to verify statically
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(pass.TypeOf(arg)) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats an error without %%w; wrap it so errors.Is still sees the sentinel")
			return
		}
	}
}
