package sysim

import (
	"testing"

	"graphdse/internal/graph"
)

func TestTraceBFSParallelMatchesSequentialReachability(t *testing.T) {
	g := paperGraph(t)
	ref, err := graph.BFSTopDown(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		m, _ := NewMachine(DefaultConfig())
		res, err := TraceBFSParallel(m, g, 0, threads)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if res.Visited != ref.Visited {
			t.Fatalf("threads=%d: visited %d, reference %d", threads, res.Visited, ref.Visited)
		}
		if res.Iterations != ref.Iterations {
			t.Fatalf("threads=%d: iterations %d vs %d", threads, res.Iterations, ref.Iterations)
		}
	}
}

func TestTraceBFSParallelTraceOrderedAndTagged(t *testing.T) {
	g := paperGraph(t)
	m, _ := NewMachine(DefaultConfig())
	if _, err := TraceBFSParallel(m, g, 0, 4); err != nil {
		t.Fatal(err)
	}
	events := m.Trace()
	threadsSeen := map[uint8]bool{}
	for i, e := range events {
		if i > 0 && e.Cycle < events[i-1].Cycle {
			t.Fatalf("trace unsorted at %d after SortTrace", i)
		}
		threadsSeen[e.Thread] = true
	}
	if len(threadsSeen) < 2 {
		t.Fatalf("expected multiple thread tags, saw %d", len(threadsSeen))
	}
}

func TestTraceBFSParallelBarrierSemantics(t *testing.T) {
	// More threads must not lengthen the run: the critical path per level is
	// the slowest slice, which shrinks (or stays equal) as threads grow.
	g := paperGraph(t)
	m1, _ := NewMachine(DefaultConfig())
	r1, err := TraceBFSParallel(m1, g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m8, _ := NewMachine(DefaultConfig())
	r8, err := TraceBFSParallel(m8, g, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r8.FinalCycle >= r1.FinalCycle {
		t.Fatalf("8 threads (%d cycles) should beat 1 thread (%d cycles)",
			r8.FinalCycle, r1.FinalCycle)
	}
	// Speedup is bounded by the thread count.
	speedup := float64(r1.FinalCycle) / float64(r8.FinalCycle)
	if speedup > 8.5 {
		t.Fatalf("impossible speedup %.1f with 8 threads", speedup)
	}
}

func TestTraceBFSParallelValidation(t *testing.T) {
	g := paperGraph(t)
	m, _ := NewMachine(DefaultConfig())
	if _, err := TraceBFSParallel(m, g, 9999, 2); err == nil {
		t.Fatal("expected root error")
	}
	if _, err := TraceBFSParallel(m, g, 0, 0); err == nil {
		t.Fatal("expected threads error")
	}
}

func TestTraceBFSParallelDeterministic(t *testing.T) {
	g := paperGraph(t)
	m1, _ := NewMachine(DefaultConfig())
	m2, _ := NewMachine(DefaultConfig())
	if _, err := TraceBFSParallel(m1, g, 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := TraceBFSParallel(m2, g, 3, 4); err != nil {
		t.Fatal(err)
	}
	a, b := m1.Trace(), m2.Trace()
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestSetClockAndSortTrace(t *testing.T) {
	m, _ := NewMachine(DefaultConfig())
	m.SetClock(100)
	m.Load(0x1000, 4)
	m.SetClock(10)
	m.SetThread(1)
	m.Load(0x2000, 4)
	events := m.Trace()
	if events[0].Cycle < events[1].Cycle {
		t.Fatal("setup should produce out-of-order events")
	}
	m.SortTrace()
	events = m.Trace()
	if events[0].Cycle > events[1].Cycle {
		t.Fatal("SortTrace failed")
	}
	if events[0].Thread != 1 {
		t.Fatalf("thread tag lost: %+v", events[0])
	}
	m.SetClock(0) // clamps to 1
	if m.Cycle() != 1 {
		t.Fatalf("SetClock(0) = %d", m.Cycle())
	}
}
