package sysim

import (
	"fmt"

	"graphdse/internal/graph"
)

// TraceBFSParallel traces a level-synchronous parallel BFS: each level's
// frontier is partitioned across threads hardware threads, every thread's
// slice executes with its own clock starting at the level barrier, and the
// level ends at the slowest thread (a barrier join) — the shared-memory
// execution model of the Graph500 reference code. Emitted events carry
// thread IDs; the trace is re-sorted into global time order afterwards.
//
// Discovery races are resolved deterministically: a vertex found by several
// threads in the same level is owned by the lowest-ranked thread (memory
// accesses of losing attempts are still traced, as real CAS failures
// would be).
func TraceBFSParallel(m *Machine, g *graph.CSR, root uint32, threads int) (*WorkloadResult, error) {
	n := g.NumVertices()
	if int(root) >= n {
		return nil, fmt.Errorf("%w: root %d of %d", ErrWorkload, root, n)
	}
	if threads < 1 {
		return nil, fmt.Errorf("%w: %d threads", ErrWorkload, threads)
	}
	if threads > 256 {
		threads = 256
	}
	a := allocGraph(m, g, fmt.Sprintf("pbfs%d", root))
	offsets := g.Offsets()

	parent := make([]int64, n)
	m.SetThread(0)
	for i := range parent {
		parent[i] = -1
		m.Store(a.parent+uint64(i)*4, 4)
		m.Compute(1)
	}
	parent[root] = int64(root)
	m.Store(a.parent+uint64(root)*4, 4)

	frontier := []uint32{root}
	visited := 1
	iterations := 0

	for len(frontier) > 0 {
		iterations++
		levelStart := m.Cycle()
		levelEnd := levelStart
		// Per-thread discovered sets, merged deterministically at the
		// barrier (lowest thread wins a racy discovery).
		found := make([][]uint32, threads)
		claimed := make(map[uint32]int, 64)

		chunk := (len(frontier) + threads - 1) / threads
		for tid := 0; tid < threads; tid++ {
			lo := tid * chunk
			if lo >= len(frontier) {
				break
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			m.SetThread(uint8(tid))
			m.SetClock(levelStart)
			for fi := lo; fi < hi; fi++ {
				u := frontier[fi]
				m.Load(a.queue+uint64(fi)*4, 4)
				m.Load(a.offsets+uint64(u)*8, 16)
				m.Compute(14)
				for ei := offsets[u]; ei < offsets[u+1]; ei++ {
					m.Load(a.targets+uint64(ei)*4, 4)
					v := g.Targets()[ei]
					m.Load(a.parent+uint64(v)*4, 4)
					m.Compute(16)
					if parent[v] != -1 {
						continue
					}
					// Attempt to claim v (CAS); the lowest thread wins.
					if prev, raced := claimed[v]; !raced || tid < prev {
						claimed[v] = tid
					}
					m.Store(a.parent+uint64(v)*4, 4)
					m.Compute(8)
				}
				m.Compute(18)
			}
			if m.Cycle() > levelEnd {
				levelEnd = m.Cycle()
			}
		}
		// Barrier: commit claims in thread order, build the next frontier.
		m.SetClock(levelEnd)
		m.SetThread(0)
		for tid := 0; tid < threads; tid++ {
			found[tid] = found[tid][:0]
		}
		for v, tid := range claimed {
			found[tid] = append(found[tid], v)
		}
		var next []uint32
		for tid := 0; tid < threads; tid++ {
			// Deterministic order within a thread's claims.
			sortU32(found[tid])
			for _, v := range found[tid] {
				parent[v] = 1 // mark visited; the tracer does not need tree edges
				m.Store(a.queue+uint64(len(next))*4, 4)
				next = append(next, v)
				visited++
			}
		}
		frontier = next
	}
	m.Flush()
	m.SortTrace()
	return &WorkloadResult{
		Stats:       m.Stats(),
		Visited:     visited,
		Iterations:  iterations,
		FinalCycle:  m.Cycle(),
		TraceEvents: m.TraceLen(),
	}, nil
}

// sortU32 sorts a small slice in place (insertion sort; frontiers per thread
// per level are small).
func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
