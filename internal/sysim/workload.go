package sysim

import (
	"context"
	"errors"
	"fmt"

	"graphdse/internal/graph"
)

// This file instruments the graph kernels: the algorithms run for real over
// the CSR graph while every data-structure access is mirrored as a simulated
// load/store, producing the memory trace gem5 produced for the paper.

// WorkloadResult pairs the machine's trace with the kernel's output summary.
type WorkloadResult struct {
	Stats       Stats
	Visited     int
	Iterations  int
	FinalCycle  uint64
	TraceEvents int
}

// ErrWorkload reports invalid workload arguments.
var ErrWorkload = errors.New("sysim: invalid workload arguments")

// graphArrays holds the simulated base addresses of the CSR arrays.
type graphArrays struct {
	offsets uint64 // (n+1) × 8 bytes
	targets uint64 // m × 4 bytes
	parent  uint64 // n × 4 bytes
	level   uint64 // n × 4 bytes
	queue   uint64 // n × 4 bytes
	aux     uint64 // n × 8 bytes (rank vectors etc.)
	aux2    uint64 // n × 8 bytes
}

func allocGraph(m *Machine, g *graph.CSR, prefix string) graphArrays {
	n := uint64(g.NumVertices())
	mm := uint64(g.NumEdges())
	return graphArrays{
		offsets: m.Layout().Alloc(prefix+".offsets", (n+1)*8),
		targets: m.Layout().Alloc(prefix+".targets", mm*4),
		parent:  m.Layout().Alloc(prefix+".parent", n*4),
		level:   m.Layout().Alloc(prefix+".level", n*4),
		queue:   m.Layout().Alloc(prefix+".queue", n*4),
		aux:     m.Layout().Alloc(prefix+".aux", n*8),
		aux2:    m.Layout().Alloc(prefix+".aux2", n*8),
	}
}

// writeGraphPhase simulates loading/constructing the CSR image in memory:
// sequential stores over the offsets and targets arrays (the paper's trace
// covers the whole program, including graph construction).
func writeGraphPhase(m *Machine, g *graph.CSR, a graphArrays) {
	n := g.NumVertices()
	for v := 0; v <= n; v++ {
		m.Store(a.offsets+uint64(v)*8, 8)
		m.Compute(8)
	}
	mm := int(g.NumEdges())
	for i := 0; i < mm; i++ {
		m.Store(a.targets+uint64(i)*4, 4)
		m.Compute(8)
	}
}

// TraceBFS executes the Graph500 BFS kernel from root on the machine,
// mirroring every array access, and returns the kernel summary. When
// includeBuild is true the graph-construction phase is traced first.
func TraceBFS(m *Machine, g *graph.CSR, root uint32, includeBuild bool) (*WorkloadResult, error) {
	if int(root) >= g.NumVertices() {
		return nil, fmt.Errorf("%w: root %d of %d", ErrWorkload, root, g.NumVertices())
	}
	a := allocGraph(m, g, fmt.Sprintf("bfs%d", root))
	if includeBuild {
		writeGraphPhase(m, g, a)
	}
	n := g.NumVertices()
	parent := make([]int64, n)
	for i := range parent {
		parent[i] = -1
		// Initialization pass: memset-style stores.
		m.Store(a.parent+uint64(i)*4, 4)
		m.Compute(6)
	}
	parent[root] = int64(root)
	m.Store(a.parent+uint64(root)*4, 4)

	frontier := []uint32{root}
	m.Store(a.queue, 4)
	visited := 1
	iterations := 0
	offsets := g.Offsets()

	for len(frontier) > 0 {
		iterations++
		var next []uint32
		for fi, u := range frontier {
			// Pop u from the frontier queue.
			m.Load(a.queue+uint64(fi)*4, 4)
			// offsets[u] and offsets[u+1]: one 16-byte touch.
			m.Load(a.offsets+uint64(u)*8, 16)
			m.Compute(14)
			lo, hi := offsets[u], offsets[u+1]
			for ei := lo; ei < hi; ei++ {
				// targets[ei]
				m.Load(a.targets+uint64(ei)*4, 4)
				v := g.Targets()[ei]
				// parent[v] check
				m.Load(a.parent+uint64(v)*4, 4)
				m.Compute(16)
				if parent[v] == -1 {
					parent[v] = int64(u)
					m.Store(a.parent+uint64(v)*4, 4)
					// push v
					m.Store(a.queue+uint64(len(next))*4, 4)
					m.Compute(8)
					next = append(next, v)
					visited++
				}
			}
			m.Compute(18) // loop bookkeeping
		}
		frontier = next
	}
	m.Flush()
	return &WorkloadResult{
		Stats:       m.Stats(),
		Visited:     visited,
		Iterations:  iterations,
		FinalCycle:  m.Cycle(),
		TraceEvents: m.TraceLen(),
	}, nil
}

// TracePageRank executes iters power-iteration rounds of PageRank with
// mirrored memory accesses.
func TracePageRank(m *Machine, g *graph.CSR, iters int) (*WorkloadResult, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("%w: iters %d", ErrWorkload, iters)
	}
	a := allocGraph(m, g, "pagerank")
	n := g.NumVertices()
	offsets := g.Offsets()
	for i := 0; i < n; i++ {
		m.Store(a.aux+uint64(i)*8, 8) // rank[i] init
		m.Compute(1)
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			m.Store(a.aux2+uint64(i)*8, 8) // next[i] = 0
			m.Compute(1)
		}
		for u := 0; u < n; u++ {
			m.Load(a.offsets+uint64(u)*8, 16)
			m.Load(a.aux+uint64(u)*8, 8) // rank[u]
			m.Compute(5)
			for ei := offsets[u]; ei < offsets[u+1]; ei++ {
				m.Load(a.targets+uint64(ei)*4, 4)
				v := g.Targets()[ei]
				// next[v] += share: read-modify-write
				m.Load(a.aux2+uint64(v)*8, 8)
				m.Store(a.aux2+uint64(v)*8, 8)
				m.Compute(2)
			}
		}
		for i := 0; i < n; i++ {
			m.Load(a.aux2+uint64(i)*8, 8)
			m.Store(a.aux+uint64(i)*8, 8)
			m.Compute(2)
		}
	}
	m.Flush()
	return &WorkloadResult{
		Stats:       m.Stats(),
		Visited:     n,
		Iterations:  iters,
		FinalCycle:  m.Cycle(),
		TraceEvents: m.TraceLen(),
	}, nil
}

// TraceConnectedComponents executes label-propagation connected components
// with mirrored memory accesses.
func TraceConnectedComponents(m *Machine, g *graph.CSR) (*WorkloadResult, error) {
	a := allocGraph(m, g, "cc")
	n := g.NumVertices()
	offsets := g.Offsets()
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
		m.Store(a.parent+uint64(i)*4, 4)
		m.Compute(6)
	}
	iterations := 0
	for changed := true; changed; {
		changed = false
		iterations++
		for u := 0; u < n; u++ {
			m.Load(a.offsets+uint64(u)*8, 16)
			m.Load(a.parent+uint64(u)*4, 4)
			m.Compute(3)
			for ei := offsets[u]; ei < offsets[u+1]; ei++ {
				m.Load(a.targets+uint64(ei)*4, 4)
				v := g.Targets()[ei]
				m.Load(a.parent+uint64(v)*4, 4)
				m.Compute(2)
				if comp[v] < comp[u] {
					comp[u] = comp[v]
					m.Store(a.parent+uint64(u)*4, 4)
					changed = true
				} else if comp[u] < comp[v] {
					comp[v] = comp[u]
					m.Store(a.parent+uint64(v)*4, 4)
					changed = true
				}
			}
		}
	}
	m.Flush()
	return &WorkloadResult{
		Stats:       m.Stats(),
		Visited:     n,
		Iterations:  iterations,
		FinalCycle:  m.Cycle(),
		TraceEvents: m.TraceLen(),
	}, nil
}

// TraceSSSP executes unweighted single-source shortest paths (weight 1 per
// edge) with mirrored memory accesses, using a Bellman-Ford-style
// relaxation loop whose array traffic matches the bucketed Δ-stepping
// algorithm's memory behavior.
func TraceSSSP(m *Machine, g *graph.CSR, source uint32) (*WorkloadResult, error) {
	n := g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("%w: source %d of %d", ErrWorkload, source, n)
	}
	a := allocGraph(m, g, "sssp")
	offsets := g.Offsets()
	const inf = int64(^uint64(0) >> 1)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
		m.Store(a.aux+uint64(i)*8, 8)
		m.Compute(1)
	}
	dist[source] = 0
	m.Store(a.aux+uint64(source)*8, 8)

	iterations := 0
	for changed := true; changed; {
		changed = false
		iterations++
		for u := 0; u < n; u++ {
			m.Load(a.offsets+uint64(u)*8, 16)
			m.Load(a.aux+uint64(u)*8, 8)
			m.Compute(6)
			du := dist[u]
			if du == inf {
				continue
			}
			for ei := offsets[u]; ei < offsets[u+1]; ei++ {
				m.Load(a.targets+uint64(ei)*4, 4)
				v := g.Targets()[ei]
				m.Load(a.aux+uint64(v)*8, 8)
				m.Compute(4)
				if du+1 < dist[v] {
					dist[v] = du + 1
					m.Store(a.aux+uint64(v)*8, 8)
					changed = true
				}
			}
		}
	}
	m.Flush()
	visited := 0
	for _, d := range dist {
		if d != inf {
			visited++
		}
	}
	return &WorkloadResult{
		Stats:       m.Stats(),
		Visited:     visited,
		Iterations:  iterations,
		FinalCycle:  m.Cycle(),
		TraceEvents: m.TraceLen(),
	}, nil
}

// PaperWorkloadTrace reproduces the paper's exact workload setup: generate a
// GTGraph R-MAT graph with numVertices and edgeFactor, run the Graph500 BFS
// kernel from a deterministic pseudo-random root (per seed), and return the
// machine (holding the trace) plus the kernel summary. repeats > 1 runs BFS
// from additional roots, scaling the trace the way Graph500's 64-root
// harness does.
func PaperWorkloadTrace(cfg Config, numVertices, edgeFactor int, seed int64, repeats int) (*Machine, *WorkloadResult, error) {
	//lint:ignore ctxpropagate documented top-level wrapper: the no-ctx convenience API mints the root context for PaperWorkloadTraceContext
	return PaperWorkloadTraceContext(context.Background(), cfg, numVertices, edgeFactor, seed, repeats, nil)
}

// PaperWorkloadTraceContext is PaperWorkloadTrace under supervision: ctx is
// checked between BFS roots (a multi-root Graph500 harness can be cancelled
// at root granularity) and beat, when non-nil, is called after each root as
// a progress heartbeat.
func PaperWorkloadTraceContext(ctx context.Context, cfg Config, numVertices, edgeFactor int, seed int64, repeats int, beat func()) (*Machine, *WorkloadResult, error) {
	if repeats <= 0 {
		repeats = 1
	}
	g, err := graph.GenerateGTGraph(numVertices, edgeFactor, seed)
	if err != nil {
		return nil, nil, err
	}
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, nil, err
	}
	var last *WorkloadResult
	root := uint32(seed % int64(numVertices))
	if seed < 0 {
		root = 0
	}
	for r := 0; r < repeats; r++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("sysim: workload cancelled at root %d/%d: %w", r, repeats, err)
		}
		last, err = TraceBFS(m, g, (root+uint32(r*97))%uint32(numVertices), r == 0)
		if err != nil {
			return nil, nil, err
		}
		if beat != nil {
			beat()
		}
	}
	return m, last, nil
}
