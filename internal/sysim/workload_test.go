package sysim

import (
	"testing"

	"graphdse/internal/graph"
	"graphdse/internal/trace"
)

func paperGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateGTGraph(256, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTraceBFSMatchesReferenceBFS(t *testing.T) {
	g := paperGraph(t)
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := TraceBFS(m, g, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BFSTopDown(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != ref.Visited {
		t.Fatalf("instrumented BFS visited %d, reference %d", res.Visited, ref.Visited)
	}
	if res.Iterations != ref.Iterations {
		t.Fatalf("iterations %d vs %d", res.Iterations, ref.Iterations)
	}
}

func TestTraceBFSProducesOrderedTrace(t *testing.T) {
	g := paperGraph(t)
	m, _ := NewMachine(DefaultConfig())
	if _, err := TraceBFS(m, g, 3, false); err != nil {
		t.Fatal(err)
	}
	events := m.Trace()
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("trace not time-ordered at %d", i)
		}
	}
	// All addresses must land in allocated segments.
	segs := m.Layout().Segments()
	for _, e := range events {
		ok := false
		for _, s := range segs {
			if e.Addr >= s.Base && e.Addr < s.Base+s.Size+64 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("event addr %#x outside all segments", e.Addr)
		}
	}
}

func TestTraceBFSIncludeBuildAddsWrites(t *testing.T) {
	g := paperGraph(t)
	m1, _ := NewMachine(DefaultConfig())
	if _, err := TraceBFS(m1, g, 0, false); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewMachine(DefaultConfig())
	if _, err := TraceBFS(m2, g, 0, true); err != nil {
		t.Fatal(err)
	}
	if m2.Stats().MemWrites <= m1.Stats().MemWrites {
		t.Fatalf("build phase should add writes: %d vs %d",
			m2.Stats().MemWrites, m1.Stats().MemWrites)
	}
}

func TestTraceBFSBadRoot(t *testing.T) {
	g := paperGraph(t)
	m, _ := NewMachine(DefaultConfig())
	if _, err := TraceBFS(m, g, 9999, false); err == nil {
		t.Fatal("expected root error")
	}
}

func TestTraceBFSDeterministic(t *testing.T) {
	g := paperGraph(t)
	m1, _ := NewMachine(DefaultConfig())
	m2, _ := NewMachine(DefaultConfig())
	if _, err := TraceBFS(m1, g, 5, true); err != nil {
		t.Fatal(err)
	}
	if _, err := TraceBFS(m2, g, 5, true); err != nil {
		t.Fatal(err)
	}
	a, b := m1.Trace(), m2.Trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestTracePageRank(t *testing.T) {
	g := paperGraph(t)
	m, _ := NewMachine(DefaultConfig())
	res, err := TracePageRank(m, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 || res.TraceEvents == 0 {
		t.Fatalf("pagerank result %+v", res)
	}
	var writes int
	for _, e := range m.Trace() {
		if e.Op == trace.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("PageRank must emit writes (rank updates)")
	}
	if _, err := TracePageRank(m, g, 0); err == nil {
		t.Fatal("expected iters error")
	}
}

func TestTraceConnectedComponents(t *testing.T) {
	g := paperGraph(t)
	m, _ := NewMachine(DefaultConfig())
	res, err := TraceConnectedComponents(m, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 || res.TraceEvents == 0 {
		t.Fatalf("cc result %+v", res)
	}
}

func TestPaperWorkloadTrace(t *testing.T) {
	m, res, err := PaperWorkloadTrace(DefaultConfig(), 1024, 16, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited < 512 {
		t.Fatalf("visited %d of 1024; R-MAT EF16 should have a dominant component", res.Visited)
	}
	st := trace.Summarize(m.Trace())
	if st.Events == 0 || st.Writes == 0 {
		t.Fatalf("trace stats %+v", st)
	}
	// The write share should be modest, as in the paper (~10% of reads).
	frac := float64(st.Writes) / float64(st.Reads)
	if frac <= 0 || frac > 0.8 {
		t.Fatalf("write/read ratio = %v", frac)
	}
}

func TestPaperWorkloadTraceRepeatsScaleTrace(t *testing.T) {
	m1, _, err := PaperWorkloadTrace(DefaultConfig(), 256, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m3, _, err := PaperWorkloadTrace(DefaultConfig(), 256, 8, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m3.Trace()) <= 2*len(m1.Trace()) {
		t.Fatalf("3 repeats (%d events) should be much larger than 1 (%d)",
			len(m3.Trace()), len(m1.Trace()))
	}
}

func TestPaperWorkloadTraceBadArgs(t *testing.T) {
	if _, _, err := PaperWorkloadTrace(DefaultConfig(), 1, 16, 1, 1); err == nil {
		t.Fatal("expected graph error")
	}
	if _, _, err := PaperWorkloadTrace(Config{}, 64, 4, 1, 1); err == nil {
		t.Fatal("expected machine error")
	}
}

func TestCachedWorkloadTraceSmaller(t *testing.T) {
	g := paperGraph(t)
	plain, _ := NewMachine(DefaultConfig())
	if _, err := TraceBFS(plain, g, 0, false); err != nil {
		t.Fatal(err)
	}
	cachedCfg := DefaultConfig()
	cachedCfg.CachesEnabled = true
	cached, err := NewMachine(cachedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TraceBFS(cached, g, 0, false); err != nil {
		t.Fatal(err)
	}
	if len(cached.Trace()) >= len(plain.Trace()) {
		t.Fatalf("caches should filter the trace: %d vs %d",
			len(cached.Trace()), len(plain.Trace()))
	}
}

func TestTraceSSSPMatchesReference(t *testing.T) {
	g := paperGraph(t)
	m, _ := NewMachine(DefaultConfig())
	res, err := TraceSSSP(m, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := graph.SSSPDeltaStepping(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reachable := 0
	for _, d := range dist {
		if !mathIsInf(d) {
			reachable++
		}
	}
	if res.Visited != reachable {
		t.Fatalf("instrumented SSSP visited %d, reference %d", res.Visited, reachable)
	}
	if res.TraceEvents == 0 {
		t.Fatal("empty SSSP trace")
	}
	if _, err := TraceSSSP(m, g, 9999); err == nil {
		t.Fatal("expected source error")
	}
}

func mathIsInf(d float64) bool { return d > 1e308 }

func TestPrefetcherAddsTraffic(t *testing.T) {
	g := paperGraph(t)
	base := DefaultConfig()
	base.CachesEnabled = true
	m1, err := NewMachine(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TraceBFS(m1, g, 0, false); err != nil {
		t.Fatal(err)
	}
	pf := base
	pf.PrefetchDegree = 2
	m2, err := NewMachine(pf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TraceBFS(m2, g, 0, false); err != nil {
		t.Fatal(err)
	}
	if m2.Stats().Prefetches == 0 {
		t.Fatal("prefetcher issued nothing")
	}
	// Prefetching trades more memory reads for fewer demand L2 misses.
	if m2.Stats().MemReads <= m1.Stats().MemReads {
		t.Fatalf("prefetch reads %d should exceed demand-only %d",
			m2.Stats().MemReads, m1.Stats().MemReads)
	}
	if m2.Stats().L2Misses >= m1.Stats().L2Misses {
		t.Fatalf("prefetching should cut demand L2 misses: %d vs %d",
			m2.Stats().L2Misses, m1.Stats().L2Misses)
	}
}

func TestPaperWorkloadTraceNegativeSeed(t *testing.T) {
	m, res, err := PaperWorkloadTrace(DefaultConfig(), 128, 4, -5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited < 1 || len(m.Trace()) == 0 {
		t.Fatalf("negative-seed run: visited %d, events %d", res.Visited, len(m.Trace()))
	}
}
