package sysim

import (
	"fmt"
	"sort"
)

// Layout assigns named data structures to disjoint, line-aligned ranges of
// the simulated physical address space, standing in for the process memory
// map gem5 would reproduce.
type Layout struct {
	lineBytes uint64
	next      uint64
	segments  map[string]Segment
}

// Segment is one allocated region.
type Segment struct {
	Name string
	Base uint64
	Size uint64
}

// NewLayout starts an empty layout. The address space begins at a nonzero
// base, as a real process image would.
func NewLayout(lineBytes int) *Layout {
	return &Layout{
		lineBytes: uint64(lineBytes),
		next:      0x10000,
		segments:  map[string]Segment{},
	}
}

// Alloc reserves size bytes under name and returns the base address. Each
// segment starts on a line boundary and is padded by one guard line. It
// panics on duplicate names or non-positive sizes, which are programming
// errors in workload builders.
func (l *Layout) Alloc(name string, size uint64) uint64 {
	if size == 0 {
		panic(fmt.Sprintf("sysim: zero-size segment %q", name))
	}
	if _, dup := l.segments[name]; dup {
		panic(fmt.Sprintf("sysim: duplicate segment %q", name))
	}
	base := l.next
	l.segments[name] = Segment{Name: name, Base: base, Size: size}
	// Advance to the next line boundary plus a guard line.
	end := base + size
	l.next = (end/l.lineBytes + 2) * l.lineBytes
	return base
}

// Segment looks up a named segment.
func (l *Layout) Segment(name string) (Segment, bool) {
	s, ok := l.segments[name]
	return s, ok
}

// Segments returns all segments ordered by base address.
func (l *Layout) Segments() []Segment {
	out := make([]Segment, 0, len(l.segments))
	for _, s := range l.segments {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Footprint returns the total allocated bytes including padding.
func (l *Layout) Footprint() uint64 { return l.next - 0x10000 }
