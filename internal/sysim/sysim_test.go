package sysim

import (
	"testing"

	"graphdse/internal/trace"
)

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(Config{}); err == nil {
		t.Fatal("expected error for zero CPU freq")
	}
	bad := DefaultConfig()
	bad.CachesEnabled = true
	bad.L1Lines = 0
	if _, err := NewMachine(bad); err == nil {
		t.Fatal("expected error for cache geometry")
	}
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycle() == 0 {
		t.Fatal("cycle should start positive")
	}
}

func TestCachelessEveryAccessReachesMemory(t *testing.T) {
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Load(0x1000, 8)
	m.Load(0x1000, 8) // same line again — still reaches memory (no caches)
	m.Store(0x2000, 8)
	events := m.Trace()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0].Op != trace.Read || events[2].Op != trace.Write {
		t.Fatalf("ops wrong: %+v", events)
	}
	st := m.Stats()
	if st.MemReads != 2 || st.MemWrites != 1 || st.Loads != 2 || st.Stores != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAccessSpanningTwoLines(t *testing.T) {
	m, _ := NewMachine(DefaultConfig())
	// 8-byte load at 60 crosses the 64-byte boundary → two line touches.
	m.Load(60, 8)
	if len(m.Trace()) != 2 {
		t.Fatalf("events = %d, want 2", len(m.Trace()))
	}
}

func TestCyclesAdvanceMonotonically(t *testing.T) {
	m, _ := NewMachine(DefaultConfig())
	c0 := m.Cycle()
	m.Load(0x100, 4)
	c1 := m.Cycle()
	m.Compute(10)
	c2 := m.Cycle()
	if !(c0 < c1 && c1 < c2) {
		t.Fatalf("cycles not monotone: %d %d %d", c0, c1, c2)
	}
	if c2-c1 != 10 {
		t.Fatalf("Compute(10) advanced %d", c2-c1)
	}
}

func TestComputeScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeScale = 3
	m, _ := NewMachine(cfg)
	c0 := m.Cycle()
	m.Compute(5)
	if m.Cycle()-c0 != 15 {
		t.Fatalf("scaled compute advanced %d, want 15", m.Cycle()-c0)
	}
}

func TestCachedHierarchyFiltersRepeats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachesEnabled = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Load(0x4000, 8) // same line repeatedly
	}
	st := m.Stats()
	if st.MemReads != 1 {
		t.Fatalf("MemReads = %d, want 1 (cache should absorb repeats)", st.MemReads)
	}
	if st.L1Hits != 99 {
		t.Fatalf("L1Hits = %d, want 99", st.L1Hits)
	}
}

func TestCachedDirtyEvictionWritesBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachesEnabled = true
	cfg.L1Lines = 4
	cfg.L1Ways = 1 // direct-mapped, 4 sets
	cfg.L2Lines = 8
	cfg.L2Ways = 1
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Store(0x0, 8) // line 0 dirty in L1
	// Touch many conflicting lines to force line 0 out of L1 and L2.
	for i := 1; i <= 64; i++ {
		m.Load(uint64(i*8*64), 8)
	}
	var writes int
	for _, e := range m.Trace() {
		if e.Op == trace.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("expected at least one writeback to memory")
	}
}

func TestFlushEmitsDirtyLines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachesEnabled = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Store(0x1000, 8)
	m.Store(0x2000, 8)
	pre := m.Stats().MemWrites
	m.Flush()
	if got := m.Stats().MemWrites - pre; got < 2 {
		t.Fatalf("Flush wrote back %d lines, want >= 2", got)
	}
	// A second flush has nothing left to write.
	pre = m.Stats().MemWrites
	m.Flush()
	if got := m.Stats().MemWrites - pre; got != 0 {
		t.Fatalf("second Flush wrote %d lines", got)
	}
}

func TestFlushNoopWithoutCaches(t *testing.T) {
	m, _ := NewMachine(DefaultConfig())
	m.Store(0x1000, 8)
	n := len(m.Trace())
	m.Flush()
	if len(m.Trace()) != n {
		t.Fatal("cacheless Flush must not emit events")
	}
}

func TestLayoutDisjointSegments(t *testing.T) {
	l := NewLayout(64)
	a := l.Alloc("a", 100)
	b := l.Alloc("b", 200)
	if b < a+100 {
		t.Fatalf("segments overlap: a=%#x b=%#x", a, b)
	}
	if a%64 != 0 || b%64 != 0 {
		t.Fatalf("segments not line-aligned: %#x %#x", a, b)
	}
	seg, ok := l.Segment("a")
	if !ok || seg.Base != a || seg.Size != 100 {
		t.Fatalf("Segment lookup: %+v ok=%v", seg, ok)
	}
	if _, ok := l.Segment("zzz"); ok {
		t.Fatal("missing segment should not resolve")
	}
	if len(l.Segments()) != 2 {
		t.Fatalf("Segments = %d", len(l.Segments()))
	}
	if l.Footprint() == 0 {
		t.Fatal("footprint should be positive")
	}
}

func TestLayoutPanics(t *testing.T) {
	l := NewLayout(64)
	l.Alloc("x", 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected duplicate panic")
			}
		}()
		l.Alloc("x", 10)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected zero-size panic")
			}
		}()
		l.Alloc("y", 0)
	}()
}
