package sysim

// cache is a set-associative write-back cache used for the optional L1/L2
// hierarchy. It tracks tags only; data motion is expressed as trace events
// by the machine.
type cache struct {
	ways int
	sets int
	tags [][]cline
	tick uint64
}

type cline struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

func newCache(lines, ways int) *cache {
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	c := &cache{ways: ways, sets: sets, tags: make([][]cline, sets)}
	for i := range c.tags {
		c.tags[i] = make([]cline, ways)
	}
	return c
}

// access probes for line; on a hit it refreshes LRU state and applies the
// dirty bit for writes. It does not allocate on miss.
func (c *cache) access(line uint64, write bool) bool {
	c.tick++
	set := c.tags[line%uint64(c.sets)]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].lastUse = c.tick
			if write {
				set[i].dirty = true
			}
			return true
		}
	}
	return false
}

// fill installs line (dirty when the triggering access was a write) and
// reports whether a dirty victim must be written back, along with its line
// index.
func (c *cache) fill(line uint64, dirty bool) (writeback bool, victim uint64) {
	c.tick++
	set := c.tags[line%uint64(c.sets)]
	v := 0
	for i := range set {
		if !set[i].valid {
			v = i
			break
		}
		if set[i].lastUse < set[v].lastUse {
			v = i
		}
	}
	old := set[v]
	set[v] = cline{tag: line, valid: true, dirty: dirty, lastUse: c.tick}
	if old.valid && old.dirty {
		return true, old.tag
	}
	return false, 0
}

// dirtyLines returns all dirty line indices in deterministic order.
func (c *cache) dirtyLines() []uint64 {
	var out []uint64
	for _, set := range c.tags {
		for _, l := range set {
			if l.valid && l.dirty {
				out = append(out, l.tag)
			}
		}
	}
	return out
}

// reset invalidates the whole cache.
func (c *cache) reset() {
	for _, set := range c.tags {
		for i := range set {
			set[i] = cline{}
		}
	}
}
