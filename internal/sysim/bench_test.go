package sysim

import (
	"testing"

	"graphdse/internal/graph"
)

func BenchmarkTraceBFS(b *testing.B) {
	g, err := graph.GenerateGTGraph(1024, 16, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := TraceBFS(m, g, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceBFSCached(b *testing.B) {
	g, err := graph.GenerateGTGraph(1024, 16, 42)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CachesEnabled = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := TraceBFS(m, g, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTracePageRank(b *testing.B) {
	g, err := graph.GenerateGTGraph(512, 8, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := TracePageRank(m, g, 3); err != nil {
			b.Fatal(err)
		}
	}
}
