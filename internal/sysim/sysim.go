// Package sysim is the system-simulation front end standing in for gem5 in
// the paper's workflow (gem5 SE mode, atomic CPU): it executes the real
// graph kernels over the real data structures laid out in a simulated
// address space and records every main-memory access as a trace event. Like
// gem5's default SE/atomic configuration — which the paper used, and which
// has no cache hierarchy — every load and store reaches memory by default;
// an optional L1/L2 write-back hierarchy can be enabled for filtered-trace
// studies.
package sysim

import (
	"errors"
	"fmt"
	"sort"

	"graphdse/internal/trace"
)

// Config describes the simulated machine.
type Config struct {
	// CPUFreqMHz is used only to label the produced trace; timestamps are in
	// CPU cycles.
	CPUFreqMHz float64
	// LineBytes is the memory access granularity (cache line size).
	LineBytes int
	// CachesEnabled turns on the L1/L2 hierarchy. Off by default, matching
	// the paper's gem5 SE atomic configuration where every access reaches
	// main memory.
	CachesEnabled bool
	// L1 and L2 geometry (used only when CachesEnabled).
	L1Lines, L1Ways int
	L2Lines, L2Ways int
	// Penalties in CPU cycles.
	L1HitCycles  uint64
	L2HitCycles  uint64
	MemCycles    uint64
	ComputeScale int // multiplier on Compute costs; <=0 means 1
	// PrefetchDegree enables a next-line stream prefetcher at the L2: on an
	// L2 miss, the following PrefetchDegree lines are fetched into L2 (each
	// emitting a memory read). 0 disables prefetching.
	PrefetchDegree int
}

// DefaultConfig mirrors the paper's gem5 setup: a 2 GHz atomic CPU with no
// caches.
func DefaultConfig() Config {
	return Config{
		CPUFreqMHz:  2000,
		LineBytes:   64,
		L1Lines:     512, // 32 KiB
		L1Ways:      8,
		L2Lines:     4096, // 256 KiB
		L2Ways:      8,
		L1HitCycles: 1,
		L2HitCycles: 8,
		MemCycles:   0, // atomic memory access: zero added latency
	}
}

// ErrConfig reports an invalid machine configuration.
var ErrConfig = errors.New("sysim: invalid configuration")

// Stats counts execution activity.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	L1Hits       uint64
	L1Misses     uint64
	L2Hits       uint64
	L2Misses     uint64
	MemReads     uint64
	MemWrites    uint64
	Prefetches   uint64
}

// Machine is the atomic CPU model. It is not safe for concurrent use.
type Machine struct {
	cfg    Config
	cycle  uint64
	thread uint8
	layout *Layout
	l1, l2 *cache
	events []trace.Event
	stats  Stats
	// Streaming emit path: when sink is set, events flow through sinkBuf
	// (a small bounded buffer) into the sink instead of growing events.
	sink    trace.Sink
	sinkBuf []trace.Event
	sinkErr error
}

// sinkBufCap sizes the bounded emit buffer used in sink mode — large enough
// to amortize Sink.Emit calls, small enough to keep the machine's memory
// footprint constant regardless of trace length.
const sinkBufCap = 512

// NewMachine builds a machine.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	if cfg.CPUFreqMHz <= 0 {
		return nil, fmt.Errorf("%w: cpu %v MHz", ErrConfig, cfg.CPUFreqMHz)
	}
	if cfg.ComputeScale <= 0 {
		cfg.ComputeScale = 1
	}
	m := &Machine{cfg: cfg, cycle: 1, layout: NewLayout(cfg.LineBytes)}
	if cfg.CachesEnabled {
		if cfg.L1Lines <= 0 || cfg.L1Ways <= 0 || cfg.L2Lines <= 0 || cfg.L2Ways <= 0 {
			return nil, fmt.Errorf("%w: cache geometry", ErrConfig)
		}
		m.l1 = newCache(cfg.L1Lines, cfg.L1Ways)
		m.l2 = newCache(cfg.L2Lines, cfg.L2Ways)
	}
	return m, nil
}

// Layout returns the machine's address-space layout.
func (m *Machine) Layout() *Layout { return m.layout }

// thread is the hardware-thread tag applied to emitted events.
// SetThread/SetClock support the parallel-workload tracer, which simulates
// each worker's level-slice with its own clock and joins at barriers.

// SetThread tags subsequent memory events with a hardware-thread ID.
func (m *Machine) SetThread(id uint8) { m.thread = id }

// SetClock rewinds or advances the CPU clock; used by the parallel tracer
// to model concurrently executing workers. The trace may become locally
// unordered — call SortTrace before exporting.
func (m *Machine) SetClock(c uint64) {
	if c == 0 {
		c = 1
	}
	m.cycle = c
}

// SortTrace stable-sorts the recorded events by cycle, restoring global
// time order after parallel-section tracing. It only reorders events
// recorded in slice mode; events already streamed to a sink are past
// recall, so parallel tracing (SetClock rewinds) requires slice mode.
func (m *Machine) SortTrace() {
	sort.SliceStable(m.events, func(a, b int) bool {
		return m.events[a].Cycle < m.events[b].Cycle
	})
}

// Cycle returns the current CPU cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Stats returns a copy of the execution counters.
func (m *Machine) Stats() Stats { return m.stats }

// Trace returns a copy of the recorded main-memory events. The copy is
// defensive: callers can sort, truncate, or retag it without corrupting the
// machine's internal state (use TraceSource for a zero-copy read-only
// view). In sink mode only events recorded before SetSink are returned.
func (m *Machine) Trace() []trace.Event {
	return append([]trace.Event(nil), m.events...)
}

// TraceLen returns the number of recorded events without copying the trace.
func (m *Machine) TraceLen() int { return len(m.events) }

// TraceSource returns a zero-copy streaming view of the recorded events.
// The view is invalidated by further simulation or SortTrace; drain it (or
// hand it straight to a consumer like memsim.PrepareSource) before running
// more work on the machine.
func (m *Machine) TraceSource() trace.Source { return trace.NewSliceSource(m.events) }

// SetSink switches the machine to streaming emit: subsequent main-memory
// events are buffered (bounded at sinkBufCap) and flushed to sink instead
// of accumulating in the in-memory trace, so arbitrarily long workloads
// trace in constant memory. Call FlushTrace after the workload to drain the
// buffer and observe any sink error. Passing nil returns the machine to
// slice recording. Sink mode assumes in-order emission: it is incompatible
// with SortTrace-based parallel tracing.
func (m *Machine) SetSink(s trace.Sink) {
	if m.sink != nil {
		m.flushSinkBuf()
	}
	m.sink = s
	if s != nil && m.sinkBuf == nil {
		m.sinkBuf = make([]trace.Event, 0, sinkBufCap)
	}
}

// FlushTrace drains the bounded emit buffer into the sink and reports the
// first error any Emit returned. It is a no-op in slice mode.
func (m *Machine) FlushTrace() error {
	if m.sink != nil {
		m.flushSinkBuf()
	}
	return m.sinkErr
}

func (m *Machine) flushSinkBuf() {
	if len(m.sinkBuf) == 0 {
		return
	}
	if err := m.sink.Emit(m.sinkBuf); err != nil && m.sinkErr == nil {
		m.sinkErr = err
	}
	m.sinkBuf = m.sinkBuf[:0]
}

// Compute advances the clock by n scaled cycles of non-memory work.
func (m *Machine) Compute(n int) {
	if n <= 0 {
		return
	}
	m.cycle += uint64(n * m.cfg.ComputeScale)
	m.stats.Instructions += uint64(n)
}

// Load performs a read of size bytes at addr.
func (m *Machine) Load(addr uint64, size int) {
	m.stats.Loads++
	m.access(addr, size, false)
}

// Store performs a write of size bytes at addr.
func (m *Machine) Store(addr uint64, size int) {
	m.stats.Stores++
	m.access(addr, size, true)
}

// access touches every line overlapped by [addr, addr+size).
func (m *Machine) access(addr uint64, size int, write bool) {
	m.stats.Instructions++
	m.cycle++
	if size <= 0 {
		size = 1
	}
	lb := uint64(m.cfg.LineBytes)
	first := addr / lb
	last := (addr + uint64(size) - 1) / lb
	for line := first; line <= last; line++ {
		m.accessLine(line*lb, write)
	}
}

func (m *Machine) accessLine(lineAddr uint64, write bool) {
	if m.l1 == nil {
		// Atomic, cacheless: the access goes straight to memory.
		m.emit(lineAddr, write)
		m.cycle += m.cfg.MemCycles
		return
	}
	line := lineAddr / uint64(m.cfg.LineBytes)
	if m.l1.access(line, write) {
		m.stats.L1Hits++
		m.cycle += m.cfg.L1HitCycles
		return
	}
	m.stats.L1Misses++
	m.cycle += m.cfg.L1HitCycles
	// L1 miss: consult L2.
	if m.l2.access(line, false) {
		m.stats.L2Hits++
		m.cycle += m.cfg.L2HitCycles
	} else {
		m.stats.L2Misses++
		m.cycle += m.cfg.L2HitCycles
		// L2 miss: read the line from main memory; a dirty L2 victim is
		// written back to memory.
		m.emit(lineAddr, false)
		if wb, victim := m.l2.fill(line, false); wb {
			m.emit(victim*uint64(m.cfg.LineBytes), true)
		}
		m.cycle += m.cfg.MemCycles
		// Stream prefetch: pull the next lines into L2 off the critical
		// path (no added CPU cycles, but real memory traffic).
		for p := 1; p <= m.cfg.PrefetchDegree; p++ {
			pl := line + uint64(p)
			if m.l2.access(pl, false) {
				continue // already resident
			}
			m.stats.Prefetches++
			m.emit(pl*uint64(m.cfg.LineBytes), false)
			if wb, victim := m.l2.fill(pl, false); wb {
				m.emit(victim*uint64(m.cfg.LineBytes), true)
			}
		}
	}
	// Fill L1; a dirty L1 victim descends into L2 (never straight to
	// memory in this inclusive hierarchy).
	if wb, victim := m.l1.fill(line, write); wb {
		if !m.l2.access(victim, true) {
			if wb2, v2 := m.l2.fill(victim, true); wb2 {
				m.emit(v2*uint64(m.cfg.LineBytes), true)
			}
		}
	}
}

// emit records a main-memory event at the current cycle — into the bounded
// sink buffer in streaming mode, into the in-memory trace otherwise.
func (m *Machine) emit(addr uint64, write bool) {
	op := trace.Read
	if write {
		op = trace.Write
		m.stats.MemWrites++
	} else {
		m.stats.MemReads++
	}
	e := trace.Event{Cycle: m.cycle, Op: op, Addr: addr, Thread: m.thread}
	if m.sink != nil {
		m.sinkBuf = append(m.sinkBuf, e)
		if len(m.sinkBuf) == cap(m.sinkBuf) {
			m.flushSinkBuf()
		}
		return
	}
	m.events = append(m.events, e)
}

// Flush writes back all dirty cached lines to memory (end-of-run barrier),
// emitting the corresponding write events.
func (m *Machine) Flush() {
	if m.l1 == nil {
		return
	}
	for _, line := range m.l1.dirtyLines() {
		if !m.l2.access(line, true) {
			if wb, victim := m.l2.fill(line, true); wb {
				m.emit(victim*uint64(m.cfg.LineBytes), true)
				m.cycle++
			}
		}
	}
	for _, line := range m.l2.dirtyLines() {
		m.emit(line*uint64(m.cfg.LineBytes), true)
		m.cycle++
	}
	m.l1.reset()
	m.l2.reset()
}
