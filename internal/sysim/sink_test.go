package sysim

import (
	"errors"
	"testing"

	"graphdse/internal/trace"
)

// runSmallWorkload drives a fixed access pattern so slice mode and sink
// mode can be compared event for event.
func runSmallWorkload(m *Machine) {
	for i := 0; i < 200; i++ {
		m.Compute(3)
		m.Load(uint64(0x1000+64*i), 8)
		if i%4 == 0 {
			m.Store(uint64(0x8000+64*(i%32)), 8)
		}
	}
}

func TestSinkModeMatchesSliceMode(t *testing.T) {
	ms, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSmallWorkload(ms)
	want := ms.Trace()

	mk, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sink trace.SliceSink
	mk.SetSink(&sink)
	runSmallWorkload(mk)
	if err := mk.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Events) != len(want) {
		t.Fatalf("sink captured %d events, slice mode %d", len(sink.Events), len(want))
	}
	for i := range want {
		if sink.Events[i] != want[i] {
			t.Fatalf("event %d: sink %+v vs slice %+v", i, sink.Events[i], want[i])
		}
	}
	if mk.TraceLen() != 0 {
		t.Fatalf("sink mode still accumulated %d events in memory", mk.TraceLen())
	}
}

func TestSinkModeKeepsStats(t *testing.T) {
	ms, _ := NewMachine(DefaultConfig())
	runSmallWorkload(ms)
	mk, _ := NewMachine(DefaultConfig())
	var sink trace.SliceSink
	mk.SetSink(&sink)
	runSmallWorkload(mk)
	if err := mk.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if ms.Stats() != mk.Stats() {
		t.Fatalf("stats diverge: slice %+v vs sink %+v", ms.Stats(), mk.Stats())
	}
}

type failingSink struct{ err error }

func (f *failingSink) Emit([]trace.Event) error { return f.err }

func TestFlushTraceReportsSinkError(t *testing.T) {
	m, _ := NewMachine(DefaultConfig())
	want := errors.New("disk full")
	m.SetSink(&failingSink{err: want})
	runSmallWorkload(m)
	if err := m.FlushTrace(); !errors.Is(err, want) {
		t.Fatalf("FlushTrace err = %v, want %v", err, want)
	}
}

func TestSetSinkNilReturnsToSliceMode(t *testing.T) {
	m, _ := NewMachine(DefaultConfig())
	var sink trace.SliceSink
	m.SetSink(&sink)
	m.Load(0x1000, 8)
	m.SetSink(nil) // flushes the pending buffer first
	m.Load(0x2000, 8)
	if err := m.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Events) != 1 {
		t.Fatalf("sink got %d events, want 1", len(sink.Events))
	}
	if m.TraceLen() != 1 {
		t.Fatalf("slice mode recorded %d events after SetSink(nil), want 1", m.TraceLen())
	}
}

// TestTraceDefensiveCopy: mutating the slice Trace() returns must not
// corrupt the machine's internal record.
func TestTraceDefensiveCopy(t *testing.T) {
	m, _ := NewMachine(DefaultConfig())
	m.Load(0x1000, 8)
	m.Store(0x2000, 8)
	got := m.Trace()
	got[0].Addr = 0xdead
	got[1].Op = 'Q'
	again := m.Trace()
	if again[0].Addr == 0xdead || again[1].Op == 'Q' {
		t.Fatal("Trace() exposed internal state: mutation visible on next call")
	}
}

func TestTraceSourceStreamsRecordedEvents(t *testing.T) {
	m, _ := NewMachine(DefaultConfig())
	m.Load(0x1000, 8)
	m.Load(0x2000, 8)
	got, err := trace.Collect(m.TraceSource())
	if err != nil {
		t.Fatal(err)
	}
	want := m.Trace()
	if len(got) != len(want) {
		t.Fatalf("source yielded %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestSinkModeStreamsLongWorkload exercises multiple internal buffer
// flushes (workload emits well over sinkBufCap events).
func TestSinkModeStreamsLongWorkload(t *testing.T) {
	m, _ := NewMachine(DefaultConfig())
	var sink trace.SliceSink
	m.SetSink(&sink)
	for i := 0; i < 2000; i++ {
		m.Load(uint64(0x1000+64*i), 8)
	}
	if err := m.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Events) != 2000 {
		t.Fatalf("sink captured %d events, want 2000", len(sink.Events))
	}
	for i := 1; i < len(sink.Events); i++ {
		if sink.Events[i].Cycle < sink.Events[i-1].Cycle {
			t.Fatalf("cycle regression at %d", i)
		}
	}
}
