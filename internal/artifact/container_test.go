package artifact

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// buildContainer writes a small sealed container and returns its bytes.
func buildContainer(t *testing.T, blocks ...[]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, "TESTFMT", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := bw.WriteBlock(b, uint32(len(b))); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readAllBlocks(data []byte) (blocks int, records uint64, err error) {
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		return 0, 0, err
	}
	for {
		_, _, err := br.Next()
		if err == io.EOF {
			return int(br.Blocks()), br.Records(), nil
		}
		if err != nil {
			return int(br.Blocks()), br.Records(), err
		}
	}
}

func TestContainerRoundTrip(t *testing.T) {
	b1 := []byte("hello durable world")
	b2 := bytes.Repeat([]byte{0xAB}, 1000)
	data := buildContainer(t, b1, b2)

	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if br.Format() != "TESTFMT" || br.Version() != 2 {
		t.Fatalf("self-description lost: format=%q version=%d", br.Format(), br.Version())
	}
	p1, r1, err := br.Next()
	if err != nil || !bytes.Equal(p1, b1) || r1 != uint32(len(b1)) {
		t.Fatalf("block 0: %q/%d err=%v", p1, r1, err)
	}
	p2, _, err := br.Next()
	if err != nil || !bytes.Equal(p2, b2) {
		t.Fatalf("block 1 mismatch: err=%v", err)
	}
	if _, _, err := br.Next(); err != io.EOF {
		t.Fatalf("expected sealed EOF, got %v", err)
	}
	if rep := br.Report(nil); !rep.Complete() || rep.RecordsKept != uint64(len(b1)+len(b2)) {
		t.Fatalf("report not complete: %v", rep)
	}
}

func TestContainerEmptySealed(t *testing.T) {
	data := buildContainer(t)
	blocks, records, err := readAllBlocks(data)
	if err != nil || blocks != 0 || records != 0 {
		t.Fatalf("empty container: blocks=%d records=%d err=%v", blocks, records, err)
	}
}

// TestContainerBitFlipMatrix flips every single byte of a sealed container
// and asserts the damage is always detected — the core promise of the v2
// framing. Flips in the header or checksums must be ErrCorrupt; flips in a
// length prefix may instead present as truncation.
func TestContainerBitFlipMatrix(t *testing.T) {
	data := buildContainer(t, []byte("block-one-payload"), []byte("block-two"))
	for i := range data {
		for _, bit := range []byte{0x01, 0x80} {
			corrupted := append([]byte(nil), data...)
			corrupted[i] ^= bit
			_, _, err := readAllBlocks(corrupted)
			if err == nil {
				t.Fatalf("bit flip at byte %d (mask %#x) went undetected", i, bit)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("byte %d: unexpected error class: %v", i, err)
			}
		}
	}
}

// TestContainerTruncationMatrix cuts the container at every byte length and
// asserts every cut is detected (no silent short read).
func TestContainerTruncationMatrix(t *testing.T) {
	data := buildContainer(t, []byte("0123456789abcdef"), []byte("xyz"))
	for cut := 0; cut < len(data); cut++ {
		_, _, err := readAllBlocks(data[:cut])
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", cut, len(data))
		}
	}
}

func TestContainerNamesBadBlock(t *testing.T) {
	data := buildContainer(t, []byte("first block ok"), []byte("second block bad"))
	// Flip a byte inside the second block's payload (last 16+trailer bytes
	// from the end minus trailer): locate by re-reading structure instead —
	// payload of block 1 starts at header+frame+len(b0)+frame.
	off := headerSize + frameHeaderSize + len("first block ok") + frameHeaderSize + 3
	corrupted := append([]byte(nil), data...)
	corrupted[off] ^= 0xFF
	_, _, err := readAllBlocks(corrupted)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected checksum error, got %v", err)
	}
	if !strings.Contains(err.Error(), "block 1") {
		t.Fatalf("error does not name the bad block: %v", err)
	}
}

func TestContainerRejectsWrongMagicAndVersionSurvives(t *testing.T) {
	if _, err := NewBlockReader(strings.NewReader("NOTMAGIC-and-more-bytes-here")); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong magic not rejected: %v", err)
	}
	if _, err := NewBlockReader(strings.NewReader("GDSE")); err == nil || !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header not rejected: %v", err)
	}
	// Unknown-but-intact versions are surfaced, not rejected: format owners
	// decide what versions they accept.
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, "F", 99)
	if err != nil {
		t.Fatal(err)
	}
	bw.Close()
	br, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil || br.Version() != 99 {
		t.Fatalf("version not preserved: %d err=%v", br.Version(), err)
	}
}

// TestContainerAllocationBomb feeds a frame claiming a huge payload with
// almost no data behind it: the reader must fail fast without allocating the
// claimed size.
func TestContainerAllocationBomb(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, "BOMB", 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = bw                                  // header only; now hand-craft an implausible frame
	frame := []byte{0xFE, 0xFF, 0xFF, 0x7F} // payloadLen ~2 GiB
	data := append(buf.Bytes(), frame...)
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := br.Next(); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausible payload length not rejected: %v", err)
	}
}

func TestContainerTrailerSealsRecordTotal(t *testing.T) {
	data := buildContainer(t, []byte("abc"))
	// Cut the file exactly at the block boundary (drop the trailer): must be
	// reported as truncated, not clean EOF.
	cut := len(data) - 16
	_, _, err := readAllBlocks(data[:cut])
	if err == nil || !errors.Is(err, ErrTruncated) {
		t.Fatalf("missing trailer not detected: %v", err)
	}
}

func TestByteStreamWriterReader(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789"), 100_000) // ~1MB, spans blocks
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "STREAM", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("byte stream round trip lost data: %d vs %d bytes", len(got), len(payload))
	}
	// One flipped payload bit must surface as ErrCorrupt from Read.
	corrupted := append([]byte(nil), buf.Bytes()...)
	corrupted[headerSize+frameHeaderSize+100] ^= 0x10
	r2, err := NewReader(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(r2); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped bit not detected by stream reader: %v", err)
	}
}

func TestSalvageReportString(t *testing.T) {
	rep := &SalvageReport{Format: "TRACEBIN", RecordsKept: 42, BytesKept: 800, DroppedBytes: 36, Truncated: true, Reason: "torn frame"}
	s := rep.String()
	for _, want := range []string{"TRACEBIN", "42", "truncated", "36 bytes"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
	if rep.Complete() {
		t.Fatal("truncated report claims completeness")
	}
	if !(&SalvageReport{Format: "x"}).Complete() {
		t.Fatal("clean report not complete")
	}
}

func TestWriteBlockLimits(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, "LIM", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBlock(nil, 0); err == nil {
		t.Fatal("empty block accepted")
	}
	if err := bw.WriteBlock(make([]byte, MaxBlockPayload+1), 1); err == nil {
		t.Fatal("oversized block accepted")
	}
	if _, err := NewBlockWriter(&buf, "NINECHARS", 1); err == nil {
		t.Fatal("over-long format tag accepted")
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBlock([]byte("x"), 1); err == nil {
		t.Fatal("write after close accepted")
	}
}
