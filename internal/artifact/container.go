package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Checksummed container framing. Layout (all integers little-endian):
//
//	header   magic[8]="GDSECHK1" | format[8] | version u32 | crc32c(first 20 bytes) u32
//	block    payloadLen u32 | records u32 | crc32c(payload) u32 | payload[payloadLen]
//	trailer  trailerMark u32 = 0xFFFFFFFF | totalRecords u64 | crc32c(totalRecords bytes) u32
//
// format is a payload-defined 8-byte tag ("TRACEBIN", "GRAPHCSR", ...) and
// version its format version, making every artifact self-describing. Blocks
// are independently verifiable, so a reader can stop at the first damaged
// frame and keep everything before it; the trailer seals the record total so
// a file cut exactly at a block boundary is still detected as truncated.
// payloadLen is capped at MaxBlockPayload, so a corrupt length prefix can
// never drive a multi-gigabyte allocation.

// Magic identifies a checksummed container stream. Readers of formats with
// a v1 (unframed) history peek these bytes to dispatch.
var Magic = [8]byte{'G', 'D', 'S', 'E', 'C', 'H', 'K', '1'}

// MaxBlockPayload bounds a single block's payload. Writers chunk above it;
// readers reject larger length prefixes as corrupt before allocating.
const MaxBlockPayload = 16 << 20

// trailerMark is an impossible payloadLen (> MaxBlockPayload) marking the
// trailer frame.
const trailerMark = 0xFFFFFFFF

// DefaultBlockSize is the payload size the byte-stream Writer flushes at.
const DefaultBlockSize = 256 << 10

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the container's block checksum (CRC32-Castagnoli).
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

const headerSize = 24
const frameHeaderSize = 12

// BlockWriter frames payload blocks into a checksummed container. Close
// writes the sealing trailer; the underlying writer is not closed.
type BlockWriter struct {
	w       io.Writer
	records uint64
	closed  bool
}

// NewBlockWriter writes the container header for the given format tag (at
// most 8 bytes) and version, and returns a writer for its blocks.
func NewBlockWriter(w io.Writer, format string, version uint32) (*BlockWriter, error) {
	if len(format) > 8 {
		return nil, fmt.Errorf("artifact: format tag %q longer than 8 bytes", format)
	}
	var hdr [headerSize]byte
	copy(hdr[0:8], Magic[:])
	copy(hdr[8:16], format)
	binary.LittleEndian.PutUint32(hdr[16:20], version)
	binary.LittleEndian.PutUint32(hdr[20:24], Checksum(hdr[:20]))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &BlockWriter{w: w}, nil
}

// WriteBlock frames one payload block carrying the given record count.
func (bw *BlockWriter) WriteBlock(payload []byte, records uint32) error {
	if bw.closed {
		return fmt.Errorf("artifact: write to closed container")
	}
	if len(payload) == 0 {
		return fmt.Errorf("artifact: empty block")
	}
	if len(payload) > MaxBlockPayload {
		return fmt.Errorf("artifact: block payload %d exceeds max %d", len(payload), MaxBlockPayload)
	}
	var fh [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(fh[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fh[4:8], records)
	binary.LittleEndian.PutUint32(fh[8:12], Checksum(payload))
	if _, err := bw.w.Write(fh[:]); err != nil {
		return err
	}
	if _, err := bw.w.Write(payload); err != nil {
		return err
	}
	bw.records += uint64(records)
	return nil
}

// Close seals the container with the trailer frame. It does not close the
// underlying writer.
func (bw *BlockWriter) Close() error {
	if bw.closed {
		return nil
	}
	bw.closed = true
	var tr [16]byte
	binary.LittleEndian.PutUint32(tr[0:4], trailerMark)
	binary.LittleEndian.PutUint64(tr[4:12], bw.records)
	binary.LittleEndian.PutUint32(tr[12:16], Checksum(tr[4:12]))
	_, err := bw.w.Write(tr[:])
	return err
}

// BlockReader reads and verifies a checksummed container block by block.
type BlockReader struct {
	r        io.Reader
	format   string
	version  uint32
	buf      []byte
	blocks   uint64
	records  uint64
	verified int64 // bytes of frames fully verified so far
	done     bool
	err      error
}

// NewBlockReader reads and verifies the container header. A stream that does
// not begin with the container magic fails with ErrCorrupt (callers that
// support legacy unframed formats should peek and dispatch before calling).
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: container header: %v", ErrTruncated, err)
	}
	if [8]byte(hdr[0:8]) != Magic {
		return nil, fmt.Errorf("%w: bad container magic %q", ErrCorrupt, hdr[0:8])
	}
	if got, want := binary.LittleEndian.Uint32(hdr[20:24]), Checksum(hdr[:20]); got != want {
		return nil, fmt.Errorf("%w: header checksum %#x != %#x", ErrCorrupt, got, want)
	}
	format := string(hdr[8:16])
	for len(format) > 0 && format[len(format)-1] == 0 {
		format = format[:len(format)-1]
	}
	return &BlockReader{
		r:        r,
		format:   format,
		version:  binary.LittleEndian.Uint32(hdr[16:20]),
		verified: headerSize,
	}, nil
}

// Format returns the container's payload format tag.
func (br *BlockReader) Format() string { return br.format }

// Version returns the container's payload format version.
func (br *BlockReader) Version() uint32 { return br.version }

// Blocks returns the number of blocks verified so far.
func (br *BlockReader) Blocks() uint64 { return br.blocks }

// Records returns the sum of verified block record counts so far.
func (br *BlockReader) Records() uint64 { return br.records }

// BytesVerified returns the length of the verified prefix, including the
// header and frame headers.
func (br *BlockReader) BytesVerified() int64 { return br.verified }

// Next returns the next verified block's payload and record count. The
// payload is only valid until the following Next call. At the trailer it
// verifies the sealed record total and returns io.EOF. Damage is reported as
// ErrCorrupt (checksum/structure, naming the block) or ErrTruncated (torn
// frame); the error is sticky.
func (br *BlockReader) Next() ([]byte, uint32, error) {
	if br.err != nil {
		return nil, 0, br.err
	}
	if br.done {
		br.err = io.EOF
		return nil, 0, io.EOF
	}
	var fh [frameHeaderSize]byte
	if _, err := io.ReadFull(br.r, fh[:4]); err != nil {
		if err == io.EOF {
			br.err = fmt.Errorf("%w: missing trailer after block %d", ErrTruncated, br.blocks)
		} else {
			br.err = fmt.Errorf("%w: frame header after block %d: %v", ErrTruncated, br.blocks, err)
		}
		return nil, 0, br.err
	}
	payloadLen := binary.LittleEndian.Uint32(fh[0:4])
	if payloadLen == trailerMark {
		var tr [12]byte
		if _, err := io.ReadFull(br.r, tr[:]); err != nil {
			br.err = fmt.Errorf("%w: trailer: %v", ErrTruncated, err)
			return nil, 0, br.err
		}
		total := binary.LittleEndian.Uint64(tr[0:8])
		if got, want := binary.LittleEndian.Uint32(tr[8:12]), Checksum(tr[0:8]); got != want {
			br.err = fmt.Errorf("%w: trailer checksum %#x != %#x", ErrCorrupt, got, want)
			return nil, 0, br.err
		}
		if total != br.records {
			br.err = fmt.Errorf("%w: trailer seals %d records, read %d", ErrCorrupt, total, br.records)
			return nil, 0, br.err
		}
		br.verified += 16
		br.done = true
		br.err = io.EOF
		return nil, 0, io.EOF
	}
	if payloadLen == 0 || payloadLen > MaxBlockPayload {
		br.err = fmt.Errorf("%w: block %d claims implausible payload %d bytes", ErrCorrupt, br.blocks, payloadLen)
		return nil, 0, br.err
	}
	if _, err := io.ReadFull(br.r, fh[4:]); err != nil {
		br.err = fmt.Errorf("%w: block %d frame header: %v", ErrTruncated, br.blocks, err)
		return nil, 0, br.err
	}
	records := binary.LittleEndian.Uint32(fh[4:8])
	wantCRC := binary.LittleEndian.Uint32(fh[8:12])
	if cap(br.buf) < int(payloadLen) {
		br.buf = make([]byte, payloadLen)
	}
	payload := br.buf[:payloadLen]
	if _, err := io.ReadFull(br.r, payload); err != nil {
		br.err = fmt.Errorf("%w: block %d payload: %v", ErrTruncated, br.blocks, err)
		return nil, 0, br.err
	}
	if got := Checksum(payload); got != wantCRC {
		br.err = fmt.Errorf("%w: block %d checksum %#x != %#x", ErrCorrupt, br.blocks, got, wantCRC)
		return nil, 0, br.err
	}
	br.blocks++
	br.records += uint64(records)
	br.verified += frameHeaderSize + int64(payloadLen)
	return payload, records, nil
}

// Report turns the reader's terminal state into a SalvageReport for the
// error that stopped it (io.EOF or nil means a clean, sealed end).
func (br *BlockReader) Report(err error) *SalvageReport {
	rep := &SalvageReport{
		Format:       br.format,
		RecordsKept:  br.records,
		BlocksKept:   br.blocks,
		BytesKept:    br.verified,
		DroppedBytes: -1,
	}
	if err == nil || err == io.EOF {
		return rep
	}
	rep.Reason = err.Error()
	if errors.Is(err, ErrCorrupt) {
		rep.Corrupt = true
	} else {
		rep.Truncated = true
	}
	return rep
}

// Writer adapts the container to an io.Writer for formats whose payload is
// an opaque byte stream (JSON envelopes, CSV datasets): bytes are buffered
// into DefaultBlockSize blocks, and each block's record count is its payload
// byte length, so the trailer seals the exact stream length. Close flushes
// the final block and the trailer.
type Writer struct {
	bw  *BlockWriter
	buf []byte
}

// NewWriter starts a byte-stream container on w.
func NewWriter(w io.Writer, format string, version uint32) (*Writer, error) {
	bw, err := NewBlockWriter(w, format, version)
	if err != nil {
		return nil, err
	}
	return &Writer{bw: bw, buf: make([]byte, 0, DefaultBlockSize)}, nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		room := DefaultBlockSize - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		if len(w.buf) == DefaultBlockSize {
			if err := w.flush(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (w *Writer) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	err := w.bw.WriteBlock(w.buf, uint32(len(w.buf)))
	w.buf = w.buf[:0]
	return err
}

// Close flushes buffered bytes and seals the container.
func (w *Writer) Close() error {
	if err := w.flush(); err != nil {
		return err
	}
	return w.bw.Close()
}

// Reader adapts a byte-stream container back to an io.Reader, serving only
// checksum-verified bytes. Read returns io.EOF exactly when the sealed
// trailer has been verified; damage surfaces as ErrCorrupt/ErrTruncated.
type Reader struct {
	br  *BlockReader
	buf []byte
	pos int
}

// NewReader opens a byte-stream container, verifying its header.
func NewReader(r io.Reader) (*Reader, error) {
	br, err := NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	return &Reader{br: br}, nil
}

// Format returns the container's payload format tag.
func (r *Reader) Format() string { return r.br.Format() }

// Version returns the container's payload format version.
func (r *Reader) Version() uint32 { return r.br.Version() }

// Read implements io.Reader over the verified payload stream.
func (r *Reader) Read(p []byte) (int, error) {
	for r.pos >= len(r.buf) {
		payload, _, err := r.br.Next()
		if err != nil {
			return 0, err
		}
		// Copy: BlockReader reuses its buffer across Next calls.
		r.buf = append(r.buf[:0], payload...)
		r.pos = 0
	}
	n := copy(p, r.buf[r.pos:])
	r.pos += n
	return n, nil
}
