package artifact

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeedContainer builds a valid sealed container for the seed corpus.
func fuzzSeedContainer() []byte {
	var buf bytes.Buffer
	bw, _ := NewBlockWriter(&buf, "FUZZFMT", 3)
	bw.WriteBlock([]byte("seed block one"), 3)
	bw.WriteBlock(bytes.Repeat([]byte{0x5A}, 300), 7)
	bw.Close()
	return buf.Bytes()
}

// FuzzBlockReader drives the block reader over arbitrary bytes: it must
// never panic, never allocate beyond MaxBlockPayload per block, and must
// classify every failure as ErrCorrupt or ErrTruncated.
func FuzzBlockReader(f *testing.F) {
	f.Add(fuzzSeedContainer())
	f.Add([]byte{})
	f.Add([]byte("GDSECHK1garbage-after-magic-without-checksum"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	seed := fuzzSeedContainer()
	f.Add(seed[:len(seed)-5]) // torn trailer
	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBlockReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("unclassified header error: %v", err)
			}
			return
		}
		for {
			payload, _, err := br.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
					t.Fatalf("unclassified block error: %v", err)
				}
				// Sticky: the same error must repeat.
				if _, _, err2 := br.Next(); err2 == nil {
					t.Fatal("reader continued past terminal error")
				}
				return
			}
			if len(payload) > MaxBlockPayload {
				t.Fatalf("payload %d exceeds cap", len(payload))
			}
		}
	})
}

// FuzzByteStreamReader checks the io.Reader adapter on arbitrary bytes.
func FuzzByteStreamReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "STREAM", 1)
	w.Write([]byte("the quick brown fox"))
	w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("GDSECHK1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, err := io.Copy(io.Discard, r); err != nil &&
			!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("unclassified stream error: %v", err)
		}
	})
}

// FuzzContainerRoundTrip re-frames fuzz payloads and checks they verify and
// decode back identically.
func FuzzContainerRoundTrip(f *testing.F) {
	f.Add([]byte("payload"), uint32(5))
	f.Add([]byte{0}, uint32(0))
	f.Fuzz(func(t *testing.T, payload []byte, records uint32) {
		if len(payload) == 0 || len(payload) > 1<<16 {
			return
		}
		var buf bytes.Buffer
		bw, err := NewBlockWriter(&buf, "RT", 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := bw.WriteBlock(payload, records); err != nil {
			t.Fatal(err)
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
		br, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, rec, err := br.Next()
		if err != nil || rec != records || !bytes.Equal(got, payload) {
			t.Fatalf("round trip lost data: rec=%d err=%v", rec, err)
		}
		if _, _, err := br.Next(); err != io.EOF {
			t.Fatalf("expected sealed EOF, got %v", err)
		}
	})
}
