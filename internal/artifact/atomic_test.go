package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	if err := os.WriteFile(path, []byte("old complete artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		_, err := w.Write([]byte("new complete artifact"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "new complete artifact" {
		t.Fatalf("got %q err=%v", got, err)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileAtomicLeavesOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	if err := os.WriteFile(path, []byte("old complete artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write failure")
	err := WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		w.Write([]byte("half of the new art")) // torn content that must never land
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old complete artifact" {
		t.Fatalf("old artifact damaged: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestAtomicFileAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	af, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	af.Write([]byte("doomed"))
	af.Abort()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("aborted write created target: %v", err)
	}
	assertNoTempFiles(t, dir)
	if _, err := af.Write([]byte("x")); err == nil {
		t.Fatal("write after abort accepted")
	}
	if err := af.Commit(); err == nil {
		t.Fatal("commit after abort accepted")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leaked temp file %s", e.Name())
		}
	}
}

// crashHelperEnv marks the subprocess re-exec of TestAtomicCrashConsistency.
const crashHelperEnv = "GRAPHDSE_ATOMIC_CRASH_HELPER"

// TestAtomicCrashConsistency is the acceptance test for the atomic layer:
// a subprocess rewrites one artifact in a tight loop via WriteFileAtomic and
// is SIGKILLed at a random point; the survivor on disk must always be a
// complete, checksum-valid generation — old or new, never torn. The payload
// is a sealed container so "complete" is machine-checkable.
func TestAtomicCrashConsistency(t *testing.T) {
	if target := os.Getenv(crashHelperEnv); target != "" {
		crashHelperLoop(target) // never returns
	}
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short")
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "artifact.chk")
	for round := 0; round < 8; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestAtomicCrashConsistency")
		cmd.Env = append(os.Environ(), crashHelperEnv+"="+target)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Let it complete some generations, then kill -9 mid-flight.
		time.Sleep(time.Duration(20+17*round) * time.Millisecond)
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()

		data, err := os.ReadFile(target)
		if errors.Is(err, os.ErrNotExist) {
			continue // killed before the first commit: old state (nothing) is fine
		}
		if err != nil {
			t.Fatal(err)
		}
		gen, perr := parseGeneration(data)
		if perr != nil {
			t.Fatalf("round %d: torn/corrupt artifact survived the crash: %v", round, perr)
		}
		t.Logf("round %d: survivor is complete generation %d (%d bytes)", round, gen, len(data))
	}
}

// crashHelperLoop rewrites target with successive sealed generations until
// the parent kills the process.
func crashHelperLoop(target string) {
	for gen := uint64(0); ; gen++ {
		WriteFileAtomic(target, 0o644, func(w io.Writer) error {
			bw, err := NewBlockWriter(w, "CRASHGEN", 1)
			if err != nil {
				return err
			}
			payload := make([]byte, 64*1024)
			binary.LittleEndian.PutUint64(payload, gen)
			for i := 8; i < len(payload); i++ {
				payload[i] = byte(gen + uint64(i))
			}
			if err := bw.WriteBlock(payload, 1); err != nil {
				return err
			}
			return bw.Close()
		})
	}
}

// parseGeneration verifies data is one complete sealed generation and
// returns its number.
func parseGeneration(data []byte) (uint64, error) {
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	payload, _, err := br.Next()
	if err != nil {
		return 0, err
	}
	if len(payload) < 8 {
		return 0, fmt.Errorf("short payload")
	}
	gen := binary.LittleEndian.Uint64(payload)
	for i := 8; i < len(payload); i++ {
		if payload[i] != byte(gen+uint64(i)) {
			return 0, fmt.Errorf("payload byte %d inconsistent with generation %d", i, gen)
		}
	}
	if _, _, err := br.Next(); err != io.EOF {
		return 0, fmt.Errorf("not sealed: %v", err)
	}
	return gen, nil
}
