package artifact

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem seam under every persistence path: the atomic
// writers, the daemon's WAL spool, the event journals, and the sweep
// checkpoints all perform their durable I/O through this interface instead
// of calling the os package directly. Production code uses OS; chaos and
// unit tests substitute a FaultFS to inject ENOSPC, EIO, fsync failures,
// failed renames, and torn writes deterministically — the storage failure
// modes a real deployment meets only at 3am.
//
// The seam deliberately covers exactly the operations persistence needs —
// open/write/sync/rename/remove/readdir plus the small read-side helpers —
// so a reviewer (and the atomicwrite analyzer) can enumerate every way the
// pipeline touches durable state.
type FS interface {
	// OpenFile opens name with the given flag and permissions.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a temp file in dir (see os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename(2)).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
	// Truncate cuts a file to size (journal torn-tail repair).
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so a completed rename survives power loss.
	// Best-effort by contract: some filesystems reject directory fsync, and
	// the rename itself is still atomic there.
	SyncDir(dir string) error
}

// File is the writable-handle half of the seam. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync fsyncs the file. A file whose Sync failed must never be trusted:
	// the kernel may have dropped the dirty pages, and POSIX does not
	// guarantee a retry will write them (fsyncgate). Callers discard the
	// file and retry the whole operation from scratch.
	Sync() error
	// Chmod sets the file's permissions.
	Chmod(mode os.FileMode) error
	// Name returns the path the file was opened with.
	Name() string
}

// OS is the real filesystem.
var OS FS = osFS{}

// osFS implements FS directly on the os package. It lives inside
// internal/artifact, the one package exempt from the atomicwrite analyzer,
// because it IS the primitive everything else must route through.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}
