package artifact

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Atomic file persistence. POSIX rename(2) within one directory is atomic:
// writing the new artifact to a temp file in the destination directory,
// fsyncing it, and renaming it over the target guarantees that a crash at
// any instant — including kill -9 mid-write — leaves either the old complete
// file or the new complete file, never a torn mixture. The directory is
// fsynced after the rename so the new name itself survives a power cut.
//
// All durable I/O goes through the FS seam, so the same code path runs
// against the real filesystem in production and a FaultFS in chaos tests.
// The fsync-failure contract is absolute: a temp file whose fsync failed is
// discarded, never renamed into place — after a failed fsync the kernel may
// have dropped the dirty pages, and retrying fsync on the same descriptor
// can report success without the data ever reaching the platter.

// WriteFileAtomic writes the output of fn to path atomically. fn receives a
// temp-file writer; if fn or any durability step fails, the target is left
// untouched and the temp file is removed.
func WriteFileAtomic(path string, perm os.FileMode, fn func(io.Writer) error) error {
	return WriteFileAtomicFS(OS, path, perm, fn)
}

// WriteFileAtomicFS is WriteFileAtomic against an explicit filesystem.
func WriteFileAtomicFS(fsys FS, path string, perm os.FileMode, fn func(io.Writer) error) error {
	af, err := CreateAtomicFS(fsys, path)
	if err != nil {
		return err
	}
	if err := af.Chmod(perm); err != nil {
		af.Abort()
		return err
	}
	if err := fn(af); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}

// AtomicFile is the streaming form of WriteFileAtomic: an io.Writer backed
// by a temp file in the destination directory. Commit makes the written
// content durably replace the target; Abort discards it. Exactly one of the
// two must be called; Abort after Commit is a safe no-op.
type AtomicFile struct {
	fs     FS
	f      File
	path   string
	tmp    string
	closed bool
}

// CreateAtomic starts an atomic write of path on the real filesystem.
func CreateAtomic(path string) (*AtomicFile, error) {
	return CreateAtomicFS(OS, path)
}

// CreateAtomicFS starts an atomic write of path on fsys.
func CreateAtomicFS(fsys FS, path string) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("artifact: atomic write of %s: %w", path, err)
	}
	return &AtomicFile{fs: fsys, f: f, path: path, tmp: f.Name()}, nil
}

// Write implements io.Writer on the temp file.
func (a *AtomicFile) Write(p []byte) (int, error) {
	if a.closed {
		return 0, fmt.Errorf("artifact: write to committed/aborted atomic file %s", a.path)
	}
	return a.f.Write(p)
}

// Chmod sets the permissions the committed file will carry.
func (a *AtomicFile) Chmod(perm os.FileMode) error {
	return a.f.Chmod(perm)
}

// Commit fsyncs the temp file, renames it over the target, and fsyncs the
// directory. On any error — including a failed fsync, whose file must never
// be trusted — the temp file is removed and the target is left exactly as
// it was; the caller retries the whole write or surfaces the failure.
func (a *AtomicFile) Commit() error {
	if a.closed {
		return fmt.Errorf("artifact: double commit of %s", a.path)
	}
	a.closed = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		a.fs.Remove(a.tmp)
		return fmt.Errorf("artifact: fsync %s: %w", a.tmp, err)
	}
	if err := a.f.Close(); err != nil {
		a.fs.Remove(a.tmp)
		return fmt.Errorf("artifact: close %s: %w", a.tmp, err)
	}
	if err := a.fs.Rename(a.tmp, a.path); err != nil {
		a.fs.Remove(a.tmp)
		return fmt.Errorf("artifact: commit %s: %w", a.path, err)
	}
	_ = a.fs.SyncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the pending write, leaving the target untouched.
func (a *AtomicFile) Abort() {
	if a.closed {
		return
	}
	a.closed = true
	a.f.Close()
	a.fs.Remove(a.tmp)
}
