package artifact

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Atomic file persistence. POSIX rename(2) within one directory is atomic:
// writing the new artifact to a temp file in the destination directory,
// fsyncing it, and renaming it over the target guarantees that a crash at
// any instant — including kill -9 mid-write — leaves either the old complete
// file or the new complete file, never a torn mixture. The directory is
// fsynced after the rename so the new name itself survives a power cut.

// WriteFileAtomic writes the output of fn to path atomically. fn receives a
// buffered temp-file writer; if fn or any durability step fails, the target
// is left untouched and the temp file is removed.
func WriteFileAtomic(path string, perm os.FileMode, fn func(io.Writer) error) error {
	af, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	if err := af.Chmod(perm); err != nil {
		af.Abort()
		return err
	}
	if err := fn(af); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}

// AtomicFile is the streaming form of WriteFileAtomic: an io.Writer backed
// by a temp file in the destination directory. Commit makes the written
// content durably replace the target; Abort discards it. Exactly one of the
// two must be called; Abort after Commit is a safe no-op.
type AtomicFile struct {
	f      *os.File
	path   string
	tmp    string
	closed bool
}

// CreateAtomic starts an atomic write of path.
func CreateAtomic(path string) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("artifact: atomic write of %s: %w", path, err)
	}
	return &AtomicFile{f: f, path: path, tmp: f.Name()}, nil
}

// Write implements io.Writer on the temp file.
func (a *AtomicFile) Write(p []byte) (int, error) {
	if a.closed {
		return 0, fmt.Errorf("artifact: write to committed/aborted atomic file %s", a.path)
	}
	return a.f.Write(p)
}

// Chmod sets the permissions the committed file will carry.
func (a *AtomicFile) Chmod(perm os.FileMode) error {
	return a.f.Chmod(perm)
}

// Commit fsyncs the temp file, renames it over the target, and fsyncs the
// directory. On any error the temp file is removed and the target is left
// as it was.
func (a *AtomicFile) Commit() error {
	if a.closed {
		return fmt.Errorf("artifact: double commit of %s", a.path)
	}
	a.closed = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.tmp)
		return fmt.Errorf("artifact: fsync %s: %w", a.tmp, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.tmp)
		return fmt.Errorf("artifact: close %s: %w", a.tmp, err)
	}
	if err := os.Rename(a.tmp, a.path); err != nil {
		os.Remove(a.tmp)
		return fmt.Errorf("artifact: commit %s: %w", a.path, err)
	}
	syncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the pending write, leaving the target untouched.
func (a *AtomicFile) Abort() {
	if a.closed {
		return
	}
	a.closed = true
	a.f.Close()
	os.Remove(a.tmp)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some filesystems (and platforms) reject directory fsync; the
// rename itself is still atomic there.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
