package artifact

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// writeAtomic is the test shorthand for one atomic write of content.
func writeAtomic(fsys FS, path, content string) error {
	return WriteFileAtomicFS(fsys, path, 0o644, func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	})
}

// mustContent asserts path holds exactly want.
func mustContent(t *testing.T, path, want string) {
	t.Helper()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if string(got) != want {
		t.Fatalf("%s = %q, want %q", path, got, want)
	}
}

// tempResidue counts leaked atomic-write temp files in dir.
func tempResidue(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".") && strings.Contains(e.Name(), ".tmp-") {
			n++
		}
	}
	return n
}

// TestFaultFSWriteBudgetENOSPC: the byte budget delivers ENOSPC, the
// target is never touched, and re-arming the budget restores service —
// the unit-level model of a disk filling up and being cleared.
func TestFaultFSWriteBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	path := filepath.Join(dir, "artifact.json")
	if err := writeAtomic(ffs, path, "v1"); err != nil {
		t.Fatalf("unfaulted write: %v", err)
	}

	ffs.SetWriteBudget(0)
	err := writeAtomic(ffs, path, "v2-should-never-land")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("budget-exhausted write: got %v, want ENOSPC", err)
	}
	mustContent(t, path, "v1")
	if n := tempResidue(t, dir); n != 0 {
		t.Fatalf("%d temp files leaked after failed write", n)
	}
	// The budget stays exhausted: later writes keep failing, as on a
	// genuinely full disk.
	if err := writeAtomic(ffs, path, "v2"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second write after exhaustion: got %v, want ENOSPC", err)
	}

	ffs.SetWriteBudget(-1)
	if err := writeAtomic(ffs, path, "v2"); err != nil {
		t.Fatalf("write after budget re-arm: %v", err)
	}
	mustContent(t, path, "v2")
	if ffs.Injected() < 2 {
		t.Fatalf("Injected() = %d, want >= 2", ffs.Injected())
	}
}

// TestFaultFSFsyncFailureNeverAdopted encodes the fsyncgate contract: a
// temp file whose fsync failed is discarded, never renamed over the
// target, because the kernel may already have dropped its pages.
func TestFaultFSFsyncFailureNeverAdopted(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	path := filepath.Join(dir, "artifact.json")
	if err := writeAtomic(ffs, path, "durable"); err != nil {
		t.Fatal(err)
	}

	ffs.FailSyncs(nil, 0)
	err := writeAtomic(ffs, path, "lost-to-fsync")
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("fsync-failed write: got %v, want EIO", err)
	}
	mustContent(t, path, "durable")
	if n := tempResidue(t, dir); n != 0 {
		t.Fatalf("%d temp files leaked: a failed-fsync temp must be removed, not kept", n)
	}

	ffs.Clear()
	if err := writeAtomic(ffs, path, "healed"); err != nil {
		t.Fatal(err)
	}
	mustContent(t, path, "healed")
}

// TestFaultFSRenameFailureLeavesTarget: a failed rename aborts the commit
// and removes the temp; the old artifact survives byte-for-byte.
func TestFaultFSRenameFailureLeavesTarget(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	path := filepath.Join(dir, "artifact.json")
	if err := writeAtomic(ffs, path, "old"); err != nil {
		t.Fatal(err)
	}

	ffs.FailRenames(nil, 0)
	if err := writeAtomic(ffs, path, "new"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename-failed write: got %v, want EIO", err)
	}
	mustContent(t, path, "old")
	if n := tempResidue(t, dir); n != 0 {
		t.Fatalf("%d temp files leaked after failed rename", n)
	}
}

// TestFaultFSTornWrite: the torn-write fault really persists a prefix on
// the raw handle (what checksummed formats must detect), while the atomic
// writer turns the same tear into a clean no-op on the target.
func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)

	raw := filepath.Join(dir, "journal.jsonl")
	f, err := ffs.OpenFile(raw, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ffs.TearNextWrite()
	payload := []byte("0123456789")
	n, werr := f.Write(payload)
	f.Close()
	if !errors.Is(werr, syscall.EIO) {
		t.Fatalf("torn write: got err %v, want EIO", werr)
	}
	if n == 0 || n >= len(payload) {
		t.Fatalf("torn write persisted %d bytes, want a strict prefix", n)
	}
	mustContent(t, raw, string(payload[:n]))

	// Through the atomic writer the tear is invisible to the target.
	target := filepath.Join(dir, "artifact.json")
	if err := writeAtomic(ffs, target, "good"); err != nil {
		t.Fatal(err)
	}
	ffs.TearNextWrite()
	if err := writeAtomic(ffs, target, "torn-attempt"); err == nil {
		t.Fatal("torn atomic write reported success")
	}
	mustContent(t, target, "good")
	if r := tempResidue(t, dir); r != 0 {
		t.Fatalf("%d temp files leaked after torn atomic write", r)
	}
}

// TestFaultFSClearOnFile: the out-of-band recovery trigger disarms every
// fault the moment the clear file appears, even though writes are failing
// — the Stat goes through the inner FS.
func TestFaultFSClearOnFile(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	trigger := filepath.Join(dir, "heal-me")
	ffs.FailWrites(nil, 0)
	ffs.ClearOnFile(trigger)

	path := filepath.Join(dir, "artifact.json")
	if err := writeAtomic(ffs, path, "x"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("armed write: got %v, want EIO", err)
	}

	if err := os.WriteFile(trigger, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeAtomic(ffs, path, "recovered"); err != nil {
		t.Fatalf("write after clear file appeared: %v", err)
	}
	mustContent(t, path, "recovered")
}
