package artifact

import (
	"fmt"
	"io/fs"
	"os"
	"sync"
	"syscall"
)

// FaultFS wraps an FS with deterministic storage-fault injection: a byte
// budget that runs out (ENOSPC), write and fsync errors (EIO), failed
// renames, and torn writes that persist only a prefix before erroring. It
// is how the chaos tests and the CI disk-pressure smoke prove that a full
// or flaky disk degrades the daemon instead of corrupting it.
//
// All knobs are safe for concurrent use and can be re-armed between test
// phases. Faults affect only mutations; reads always pass through, so a
// "full disk" still serves existing artifacts exactly like the real thing.
type FaultFS struct {
	inner FS

	mu sync.Mutex
	// budget is the remaining write allowance in bytes; <0 means unlimited.
	// A write that would exceed it persists nothing and returns ENOSPC —
	// and every later write fails too, until the budget is re-armed.
	budget int64
	// writeErr fails Write calls after writeAfter more successful ones.
	writeErr   error
	writeAfter int
	// syncErr fails File.Sync after syncAfter more successful ones.
	syncErr   error
	syncAfter int
	// renameErr fails Rename after renameAfter more successful ones.
	renameErr   error
	renameAfter int
	// tornNext makes the next write persist only half its bytes, then
	// return EIO — a torn write the durability layer must never adopt.
	tornNext bool
	// clearFile, when set, disarms every fault as soon as the file exists
	// (checked through the inner FS, so injected faults cannot hide it).
	// It is the recovery trigger for process-level chaos drills: the
	// harness touches the file and the "disk" heals.
	clearFile string

	injected int64 // faults actually delivered
}

// NewFaultFS wraps inner (nil means OS) with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, budget: -1}
}

// SetWriteBudget arms ENOSPC after n more written bytes (n<0 disarms).
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	f.budget = n
	f.mu.Unlock()
}

// FailWrites arms err (EIO when nil) on every Write after the next `after`
// successful ones.
func (f *FaultFS) FailWrites(err error, after int) {
	f.mu.Lock()
	f.writeErr = orEIO(err)
	f.writeAfter = after
	f.mu.Unlock()
}

// FailSyncs arms err (EIO when nil) on every File.Sync after the next
// `after` successful ones.
func (f *FaultFS) FailSyncs(err error, after int) {
	f.mu.Lock()
	f.syncErr = orEIO(err)
	f.syncAfter = after
	f.mu.Unlock()
}

// FailRenames arms err (EIO when nil) on every Rename after the next
// `after` successful ones.
func (f *FaultFS) FailRenames(err error, after int) {
	f.mu.Lock()
	f.renameErr = orEIO(err)
	f.renameAfter = after
	f.mu.Unlock()
}

// TearNextWrite makes the next Write persist only a prefix, then fail.
func (f *FaultFS) TearNextWrite() {
	f.mu.Lock()
	f.tornNext = true
	f.mu.Unlock()
}

// ClearOnFile disarms all faults automatically once path exists.
func (f *FaultFS) ClearOnFile(path string) {
	f.mu.Lock()
	f.clearFile = path
	f.mu.Unlock()
}

// Clear disarms every fault.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	f.clearLocked()
	f.mu.Unlock()
}

func (f *FaultFS) clearLocked() {
	f.budget = -1
	f.writeErr, f.writeAfter = nil, 0
	f.syncErr, f.syncAfter = nil, 0
	f.renameErr, f.renameAfter = nil, 0
	f.tornNext = false
}

// Injected reports how many faults have actually been delivered.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// checkClearLocked disarms everything if the clear-file has appeared.
// Caller holds f.mu; the Stat goes through the inner FS so the trigger is
// visible even while writes are failing.
func (f *FaultFS) checkClearLocked() {
	if f.clearFile == "" {
		return
	}
	if _, err := f.inner.Stat(f.clearFile); err == nil {
		f.clearLocked()
		f.clearFile = ""
	}
}

func orEIO(err error) error {
	if err == nil {
		return syscall.EIO
	}
	return err
}

// writeGate decides one Write call's fate: pass n bytes through, or persist
// `keep` bytes and fail with err.
func (f *FaultFS) writeGate(n int) (keep int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.checkClearLocked()
	if f.tornNext {
		f.tornNext = false
		f.injected++
		return n / 2, fmt.Errorf("faultfs: torn write: %w", syscall.EIO)
	}
	if f.writeErr != nil {
		if f.writeAfter > 0 {
			f.writeAfter--
		} else {
			f.injected++
			return 0, fmt.Errorf("faultfs: write: %w", f.writeErr)
		}
	}
	if f.budget >= 0 {
		if int64(n) > f.budget {
			f.injected++
			f.budget = 0
			return 0, fmt.Errorf("faultfs: write budget exhausted: %w", syscall.ENOSPC)
		}
		f.budget -= int64(n)
	}
	return n, nil
}

func (f *FaultFS) syncGate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.checkClearLocked()
	if f.syncErr == nil {
		return nil
	}
	if f.syncAfter > 0 {
		f.syncAfter--
		return nil
	}
	f.injected++
	return fmt.Errorf("faultfs: fsync: %w", f.syncErr)
}

func (f *FaultFS) renameGate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.checkClearLocked()
	if f.renameErr == nil {
		return nil
	}
	if f.renameAfter > 0 {
		f.renameAfter--
		return nil
	}
	f.injected++
	return fmt.Errorf("faultfs: rename: %w", f.renameErr)
}

// faultFile routes Write/Sync through the parent's gates.
type faultFile struct {
	File
	parent *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	keep, gerr := ff.parent.writeGate(len(p))
	if gerr != nil {
		n := 0
		if keep > 0 {
			// Torn write: a prefix really reaches the file — the tear the
			// checksummed formats must detect and refuse to adopt.
			n, _ = ff.File.Write(p[:keep])
		}
		return n, gerr
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.parent.syncGate(); err != nil {
		return err
	}
	return ff.File.Sync()
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, parent: f}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, parent: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.renameGate(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *FaultFS) ReadFile(name string) ([]byte, error)       { return f.inner.ReadFile(name) }
func (f *FaultFS) Stat(name string) (os.FileInfo, error)      { return f.inner.Stat(name) }
func (f *FaultFS) Truncate(name string, size int64) error     { return f.inner.Truncate(name, size) }
func (f *FaultFS) SyncDir(dir string) error                   { return f.inner.SyncDir(dir) }
