// Package artifact is the durability layer under every on-disk artifact in
// the pipeline: traces, converted traces, sweep checkpoints, datasets, graph
// snapshots, and trained models. At paper scale (91.5M-line traces,
// multi-hour 416-point sweeps) a torn write or a flipped bit in any link of
// that chain silently poisons everything downstream, so the package provides
// the two guarantees the rest of the repository builds on:
//
//   - Atomic persistence (atomic.go): WriteFileAtomic and AtomicFile write
//     through a temp file in the destination directory, fsync, and rename,
//     so a crash at any instant leaves either the old complete artifact or
//     the new complete artifact — never a torn file.
//
//   - Checksummed container framing (container.go): a self-describing
//     envelope (magic, format tag, format version) carrying the payload in
//     blocks protected by CRC32-Castagnoli and record counts, with a trailer
//     that seals the total. Readers detect bit rot (naming the bad block)
//     and distinguish it from truncation, and salvage readers recover the
//     longest valid prefix of a damaged file, reporting exactly what was
//     dropped (SalvageReport).
package artifact

import (
	"errors"
	"fmt"
)

// ErrCorrupt reports data that is present but provably damaged: a checksum
// mismatch, an implausible length prefix, or a sealed total that does not
// match what was read. Retrying the read will not help; the artifact must be
// regenerated or salvaged.
var ErrCorrupt = errors.New("artifact: corrupt data")

// ErrTruncated reports an artifact that ends mid-frame — the signature of a
// torn write or an interrupted copy. The prefix before the tear may still be
// salvageable.
var ErrTruncated = errors.New("artifact: truncated data")

// Process exit codes shared by the cmd/* tools so scripts can distinguish
// failure modes: ExitCorrupt means the input failed validation and nothing
// was produced; ExitSalvaged means the tool completed using the valid prefix
// of a damaged input and the output reflects losses; ExitTimeout means a
// watchdog or deadline stopped the run (guard.Class Timeout) — with a
// checkpoint configured the work completed so far is resumable; ExitForced
// means a second SIGINT/SIGTERM pre-empted a graceful drain (the operator
// really meant it) — durable state was checkpointed up to the moment of the
// first signal, and a restart resumes from it.
const (
	ExitOK       = 0
	ExitError    = 1
	ExitUsage    = 2
	ExitCorrupt  = 3
	ExitSalvaged = 4
	ExitTimeout  = 5
	ExitForced   = 6
)

// SalvageReport describes how much of a damaged artifact a salvage reader
// recovered and why it stopped. Readers return it alongside the recovered
// prefix so callers can log precisely what was lost instead of guessing.
type SalvageReport struct {
	Format       string // format tag of the artifact ("TRACEBIN", "jsonl", ...)
	RecordsKept  uint64 // records recovered from the valid prefix
	BlocksKept   uint64 // container blocks verified (0 for line formats)
	BytesKept    int64  // length of the valid prefix in bytes
	DroppedBytes int64  // bytes past the valid prefix, -1 when unknown
	Truncated    bool   // input ended mid-frame or mid-record (torn write)
	Corrupt      bool   // checksum or structural mismatch at the cut point
	Reason       string // human-readable cause of the cut, "" when complete
}

// Complete reports whether the artifact was read to its sealed end with
// nothing dropped.
func (r *SalvageReport) Complete() bool {
	return r != nil && !r.Truncated && !r.Corrupt
}

// String renders the report as a one-line salvage note.
func (r *SalvageReport) String() string {
	if r == nil {
		return "salvage: no report"
	}
	if r.Complete() {
		return fmt.Sprintf("%s: complete, %d records (%d bytes)", r.Format, r.RecordsKept, r.BytesKept)
	}
	kind := "truncated"
	if r.Corrupt {
		kind = "corrupt"
	}
	dropped := "unknown bytes"
	if r.DroppedBytes >= 0 {
		dropped = fmt.Sprintf("%d bytes", r.DroppedBytes)
	}
	return fmt.Sprintf("%s: %s after %d records (%d bytes kept, %s dropped): %s",
		r.Format, kind, r.RecordsKept, r.BytesKept, dropped, r.Reason)
}
