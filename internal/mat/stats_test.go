package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(v); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(v); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance singleton = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	mustPanic(t, func() { MinMax(nil) })
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v", got)
	}
	mustPanic(t, func() { Median(nil) })
}

func TestMedianDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Median(v)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatalf("Median mutated input: %v", v)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{0, 1, 2, 3, 4}
	if got := Quantile(v, 0); got != 0 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(v, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(v, 0.5); got != 2 {
		t.Fatalf("q0.5 = %v", got)
	}
	if got := Quantile(v, 0.25); got != 1 {
		t.Fatalf("q0.25 = %v", got)
	}
	mustPanic(t, func() { Quantile(v, -0.1) })
	mustPanic(t, func() { Quantile(nil, 0.5) })
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5, 5}); got != 0 {
		t.Fatalf("Pearson constant = %v, want 0", got)
	}
	mustPanic(t, func() { Pearson(x, y[:2]) })
}

// Property: min <= mean <= max and variance >= 0.
func TestPropMomentBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVec(rng, 1+rng.Intn(64))
		lo, hi := MinMax(v)
		m := Mean(v)
		return lo <= m+1e-12 && m <= hi+1e-12 && Variance(v) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is bounded in [-1, 1] and symmetric.
func TestPropPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(32)
		x, y := randomVec(rng, n), randomVec(rng, n)
		p := Pearson(x, y)
		return p >= -1-1e-9 && p <= 1+1e-9 && math.Abs(p-Pearson(y, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
