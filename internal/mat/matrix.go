// Package mat provides small dense linear-algebra primitives used by the
// machine-learning surrogates in this repository: dense matrices, vector
// helpers, Cholesky and QR factorizations, and linear-system solvers.
//
// The package is intentionally minimal and allocation-conscious; it is not a
// general BLAS replacement. Matrices are stored row-major.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// ErrShape is returned when matrix dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible shapes")

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// NewDense allocates an r-by-c zero matrix. If data is non-nil it must have
// length r*c and is used directly (not copied).
func NewDense(r, c int, data []float64) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	if data == nil {
		data = make([]float64, r*c)
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of bounds %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of bounds")
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns the backing slice of row i without copying. The caller must
// not grow the slice.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of bounds")
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic("mat: column index out of bounds")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows, nil)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols, nil)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Dense, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d * vec(%d)", ErrShape, a.rows, a.cols, len(x))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.data[i*a.cols:(i+1)*a.cols], x)
	}
	return out, nil
}

// Add returns a+b.
func Add(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, ErrShape
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// Sub returns a-b.
func Sub(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, ErrShape
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddDiag adds v to every diagonal element in place (ridge regularization).
func (m *Dense) AddDiag(v float64) *Dense {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	for i := 0; i < n; i++ {
		m.data[i*m.cols+i] += v
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dot returns the inner product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: sqdist length mismatch")
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// Equal reports whether a and b have the same shape and elements within tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}
