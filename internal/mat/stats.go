package mat

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of v, or 0 for empty input.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v, or 0 for fewer than two
// elements.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	return math.Sqrt(Variance(v))
}

// MinMax returns the smallest and largest values of v. It panics on empty
// input.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		panic("mat: MinMax of empty slice")
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Median returns the median of v (average of middle two for even length).
// It panics on empty input.
func Median(v []float64) float64 {
	if len(v) == 0 {
		panic("mat: Median of empty slice")
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-th quantile (0 <= q <= 1) of v using linear
// interpolation. It panics on empty input or q outside [0,1].
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		panic("mat: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("mat: Quantile q out of range")
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It panics when lengths differ and returns 0 when either input is constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Pearson length mismatch")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
