package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4, nil)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d, want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseData(t *testing.T) {
	m := NewDense(2, 2, []float64{1, 2, 3, 4})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected layout: %v", m)
	}
}

func TestNewDensePanics(t *testing.T) {
	mustPanic(t, func() { NewDense(0, 2, nil) })
	mustPanic(t, func() { NewDense(2, 2, []float64{1}) })
}

func TestSetAt(t *testing.T) {
	m := NewDense(2, 3, nil)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	m := NewDense(2, 2, nil)
	mustPanic(t, func() { m.At(2, 0) })
	mustPanic(t, func() { m.At(0, -1) })
	mustPanic(t, func() { m.Set(-1, 0, 1) })
}

func TestRowColCopySemantics(t *testing.T) {
	m := NewDense(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row must return a copy")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col must return a copy")
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Col(1) = %v, want [2 4]", got)
	}
}

func TestRawRowAliases(t *testing.T) {
	m := NewDense(2, 2, []float64{1, 2, 3, 4})
	m.RawRow(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("RawRow must alias storage")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d", r, c)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T wrong: %v", tr)
	}
}

func TestMul(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDense(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDense(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewDense(2, 3, nil)
	if _, err := Mul(a, a); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewDense(4, 4, nil)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	got, err := Mul(a, Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, a, 1e-12) {
		t.Fatal("A*I != A")
	}
}

func TestMulVec(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got, err := MulVec(a, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
	if _, err := MulVec(a, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 3, 4})
	b := NewDense(2, 2, []float64{4, 3, 2, 1})
	s, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDense(2, 2, []float64{5, 5, 5, 5})
	if !Equal(s, want, 0) {
		t.Fatalf("Add = %v", s)
	}
	d, err := Sub(s, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(d, a, 0) {
		t.Fatalf("Sub = %v", d)
	}
	a.Clone().Scale(2)
	if a.At(0, 0) != 1 {
		t.Fatal("Scale of clone must not touch original")
	}
	if got := a.Clone().Scale(2).At(1, 1); got != 8 {
		t.Fatalf("Scale = %v, want 8", got)
	}
	c := NewDense(1, 2, nil)
	if _, err := Add(a, c); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := Sub(a, c); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestAddDiag(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 3, 4})
	a.AddDiag(10)
	if a.At(0, 0) != 11 || a.At(1, 1) != 14 || a.At(0, 1) != 2 {
		t.Fatalf("AddDiag wrong: %v", a)
	}
}

func TestDotNormSqDist(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := SqDist([]float64{1, 1}, []float64{4, 5}); got != 25 {
		t.Fatalf("SqDist = %v", got)
	}
	mustPanic(t, func() { Dot([]float64{1}, []float64{1, 2}) })
	mustPanic(t, func() { SqDist([]float64{1}, []float64{1, 2}) })
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 2}
	AXPY(2, []float64{10, 20}, y)
	if y[0] != 21 || y[1] != 42 {
		t.Fatalf("AXPY = %v", y)
	}
	mustPanic(t, func() { AXPY(1, []float64{1}, []float64{1, 2}) })
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(NewDense(1, 2, nil), NewDense(2, 1, nil), 1) {
		t.Fatal("Equal must reject shape mismatch")
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random matrices.
func TestPropTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := randomDense(rng, m, k), randomDense(rng, k, n)
		ab, _ := Mul(a, b)
		btat, _ := Mul(b.T(), a.T())
		return Equal(ab.T(), btat, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and Norm2 is non-negative.
func TestPropDotSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a, b := randomVec(rng, n), randomVec(rng, n)
		return math.Abs(Dot(a, b)-Dot(b, a)) < 1e-12 && Norm2(a) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c, nil)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
