package mat

import (
	"fmt"
	"math"
)

// JacobiEigen computes all eigenvalues and eigenvectors of a symmetric
// matrix by the cyclic Jacobi rotation method. Eigenpairs are returned
// sorted by decreasing eigenvalue; eigenvectors are the columns of the
// returned matrix.
func JacobiEigen(a *Dense, maxSweeps int) (values []float64, vectors *Dense, err error) {
	n, c := a.Dims()
	if n != c {
		return nil, nil, fmt.Errorf("%w: eigen needs square, got %dx%d", ErrShape, n, c)
	}
	if maxSweeps <= 0 {
		maxSweeps = 50
	}
	// Verify symmetry within tolerance.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-9*(1+math.Abs(a.At(i, j))) {
				return nil, nil, fmt.Errorf("mat: JacobiEigen requires symmetry (a[%d][%d] != a[%d][%d])", i, j, j, i)
			}
		}
	}
	m := a.Clone()
	v := Identity(n)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				cth := 1 / math.Sqrt(t*t+1)
				sth := t * cth
				rotate(m, v, p, q, cth, sth)
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}
	// Sort by decreasing eigenvalue, permuting eigenvector columns.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && values[idx[j]] > values[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sorted := make([]float64, n)
	vecs := NewDense(n, n, nil)
	for k, i := range idx {
		sorted[k] = values[i]
		for r := 0; r < n; r++ {
			vecs.Set(r, k, v.At(r, i))
		}
	}
	return sorted, vecs, nil
}

// rotate applies the Jacobi rotation G(p,q,θ) to m (two-sided) and
// accumulates it into v (one-sided).
func rotate(m, v *Dense, p, q int, c, s float64) {
	n := m.Rows()
	for k := 0; k < n; k++ {
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
	for k := 0; k < n; k++ {
		mpk, mqk := m.At(p, k), m.At(q, k)
		m.Set(p, k, c*mpk-s*mqk)
		m.Set(q, k, s*mpk+c*mqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}
