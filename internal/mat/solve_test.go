package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func spdMatrix(rng *rand.Rand, n int) *Dense {
	// A = BᵀB + n*I is symmetric positive definite.
	b := randomDense(rng, n, n)
	a, _ := Mul(b.T(), b)
	return a.AddDiag(float64(n))
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 8; n++ {
		a := spdMatrix(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		llt, _ := Mul(l, l.T())
		if !Equal(llt, a, 1e-8) {
			t.Fatalf("n=%d: LLᵀ != A", n)
		}
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := Cholesky(NewDense(2, 3, nil)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := spdMatrix(rng, 5)
	want := randomVec(rng, 5)
	b, _ := MulVec(a, want)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestCholeskySolveShapeError(t *testing.T) {
	l, err := Cholesky(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CholeskySolve(l, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestQRSolveExact(t *testing.T) {
	// Square well-conditioned system.
	a := NewDense(3, 3, []float64{4, 1, 0, 1, 3, 1, 0, 1, 2})
	want := []float64{1, -2, 3}
	b, _ := MulVec(a, want)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 through noisy-free samples: exact recovery expected.
	n := 20
	a := NewDense(n, 2, nil)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-2) > 1e-9 || math.Abs(coef[1]-1) > 1e-9 {
		t.Fatalf("coef = %v, want [2 1]", coef)
	}
}

func TestQRRejectsUnderdetermined(t *testing.T) {
	if _, err := QRFactor(NewDense(2, 3, nil)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestQRRejectsZeroColumn(t *testing.T) {
	a := NewDense(3, 2, []float64{1, 0, 2, 0, 3, 0})
	if _, err := QRFactor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestQRSolveShapeError(t *testing.T) {
	f, err := QRFactor(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}

// Property: least-squares residual is orthogonal to the column space.
func TestPropLeastSquaresResidualOrthogonal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 6+rng.Intn(10), 2+rng.Intn(3)
		a := randomDense(rng, m, n)
		b := randomVec(rng, m)
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // singular draw: skip
		}
		ax, _ := MulVec(a, x)
		r := make([]float64, m)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		// Aᵀ r should be ~0.
		atr, _ := MulVec(a.T(), r)
		for _, v := range atr {
			if math.Abs(v) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveSPD inverts MulVec for SPD systems.
func TestPropSPDRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := spdMatrix(rng, n)
		want := randomVec(rng, n)
		b, _ := MulVec(a, want)
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
