package mat

import (
	"fmt"
	"math"
)

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix a such that a = L*Lᵀ. It returns ErrSingular when
// a is not positive definite within numerical tolerance.
func Cholesky(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: cholesky needs square, got %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	l := NewDense(n, n, nil)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.data[j*n+k]
			d -= ljk * ljk
		}
		if d <= 1e-14 {
			return nil, ErrSingular
		}
		d = math.Sqrt(d)
		l.data[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.data[i*n+k] * l.data[j*n+k]
			}
			l.data[i*n+j] = s / d
		}
	}
	return l, nil
}

// CholeskySolve solves a*x = b given the Cholesky factor l of a.
func CholeskySolve(l *Dense, b []float64) ([]float64, error) {
	n := l.rows
	if len(b) != n {
		return nil, ErrShape
	}
	// Forward substitution: L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.data[i*n+k] * y[k]
		}
		y[i] = s / l.data[i*n+i]
	}
	// Back substitution: Lᵀ*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.data[k*n+i] * x[k]
		}
		x[i] = s / l.data[i*n+i]
	}
	return x, nil
}

// QR holds a Householder QR factorization of an m-by-n matrix with m >= n.
type QR struct {
	qr   *Dense    // packed factors: R in upper triangle, Householder vectors below
	rd   []float64 // diagonal of R
	m, n int
}

// QRFactor computes the Householder QR factorization of a (m >= n).
func QRFactor(a *Dense) (*QR, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("%w: QR needs rows >= cols, got %dx%d", ErrShape, m, n)
	}
	qr := a.Clone()
	rd := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.data[i*n+k])
		}
		if nrm == 0 {
			return nil, ErrSingular
		}
		if qr.data[k*n+k] < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.data[i*n+k] /= nrm
		}
		qr.data[k*n+k] += 1
		// Apply transformation to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.data[i*n+k] * qr.data[i*n+j]
			}
			s = -s / qr.data[k*n+k]
			for i := k; i < m; i++ {
				qr.data[i*n+j] += s * qr.data[i*n+k]
			}
		}
		rd[k] = -nrm
	}
	return &QR{qr: qr, rd: rd, m: m, n: n}, nil
}

// Solve computes the least-squares solution x minimizing ||a*x - b||₂.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.m {
		return nil, ErrShape
	}
	m, n := f.m, f.n
	y := make([]float64, m)
	copy(y, b)
	// Apply Householder transformations: y = Qᵀ b.
	for k := 0; k < n; k++ {
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.data[i*n+k] * y[i]
		}
		s = -s / f.qr.data[k*n+k]
		for i := k; i < m; i++ {
			y[i] += s * f.qr.data[i*n+k]
		}
	}
	// Back-substitute R*x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= f.qr.data[i*n+k] * x[k]
		}
		if math.Abs(f.rd[i]) < 1e-14 {
			return nil, ErrSingular
		}
		x[i] = s / f.rd[i]
	}
	return x, nil
}

// LeastSquares solves min ||a*x - b||₂ via QR factorization.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	f, err := QRFactor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveSPD solves a*x = b for symmetric positive-definite a via Cholesky.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b)
}
