package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJacobiEigenDiagonal(t *testing.T) {
	a := NewDense(3, 3, []float64{5, 0, 0, 0, 2, 0, 0, 0, 9})
	values, vectors, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 5, 2}
	for i := range want {
		if math.Abs(values[i]-want[i]) > 1e-10 {
			t.Fatalf("values = %v, want %v", values, want)
		}
	}
	// Eigenvectors are permutation of identity columns (up to sign).
	for c := 0; c < 3; c++ {
		var nonzero int
		for r := 0; r < 3; r++ {
			if math.Abs(vectors.At(r, c)) > 1e-8 {
				nonzero++
			}
		}
		if nonzero != 1 {
			t.Fatalf("column %d not axis-aligned: %v", c, vectors)
		}
	}
}

func TestJacobiEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewDense(2, 2, []float64{2, 1, 1, 2})
	values, vectors, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(values[0]-3) > 1e-10 || math.Abs(values[1]-1) > 1e-10 {
		t.Fatalf("values = %v", values)
	}
	// Verify A v = λ v for the top eigenpair.
	v0 := vectors.Col(0)
	av, _ := MulVec(a, v0)
	for i := range av {
		if math.Abs(av[i]-3*v0[i]) > 1e-9 {
			t.Fatalf("A v != λ v: %v vs %v", av, v0)
		}
	}
}

func TestJacobiEigenRejects(t *testing.T) {
	if _, _, err := JacobiEigen(NewDense(2, 3, nil), 0); err == nil {
		t.Fatal("expected shape error")
	}
	asym := NewDense(2, 2, []float64{1, 2, 3, 4})
	if _, _, err := JacobiEigen(asym, 0); err == nil {
		t.Fatal("expected symmetry error")
	}
}

// Property: eigen reconstruction A ≈ V Λ Vᵀ and trace preservation.
func TestPropJacobiEigenReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		// Random symmetric matrix.
		a := NewDense(n, n, nil)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		values, vectors, err := JacobiEigen(a, 0)
		if err != nil {
			return false
		}
		// Trace preserved.
		var trA, trL float64
		for i := 0; i < n; i++ {
			trA += a.At(i, i)
			trL += values[i]
		}
		if math.Abs(trA-trL) > 1e-7 {
			return false
		}
		// Reconstruct.
		lam := NewDense(n, n, nil)
		for i := 0; i < n; i++ {
			lam.Set(i, i, values[i])
		}
		vl, _ := Mul(vectors, lam)
		rec, _ := Mul(vl, vectors.T())
		return Equal(rec, a, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
