package graphdse

import (
	"bytes"
	"math"
	"testing"

	"graphdse/internal/dse"
	"graphdse/internal/graph"
	"graphdse/internal/memsim"
	"graphdse/internal/ml"
	"graphdse/internal/sysim"
	"graphdse/internal/trace"
)

// TestPipelineTraceFormatsAgree runs the full front half of the workflow —
// workload → sysim trace → gem5 text → parallel conversion → NVMain text —
// and verifies the memory simulator sees identical events either way.
func TestPipelineTraceFormatsAgree(t *testing.T) {
	machine, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 256, 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct := machine.Trace()

	var gem5 bytes.Buffer
	if err := trace.WriteGem5(&gem5, direct, 500); err != nil {
		t.Fatal(err)
	}
	var nvmain bytes.Buffer
	if _, err := trace.ConvertParallel(gem5.Bytes(), &nvmain, 500, 4, 4096); err != nil {
		t.Fatal(err)
	}
	converted, err := trace.ReadNVMain(&nvmain)
	if err != nil {
		t.Fatal(err)
	}
	if len(converted) != len(direct) {
		t.Fatalf("converted %d events, direct %d", len(converted), len(direct))
	}

	cfg := memsim.NewNVMConfig(2, 2000, 666, 67)
	a, err := memsim.RunTrace(cfg, direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := memsim.RunTrace(cfg, converted)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPowerPerChannel != b.AvgPowerPerChannel || a.AvgTotalLatency != b.AvgTotalLatency {
		t.Fatal("direct and converted traces simulate differently")
	}
}

// TestPipelinePaperShapesOnFullWorkload runs the paper workload end-to-end
// and asserts the headline §IV-B shape claims on the real (not synthetic)
// trace.
func TestPipelinePaperShapesOnFullWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload in -short mode")
	}
	machine, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 1024, 16, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	events := machine.Trace()

	d, err := memsim.RunTrace(memsim.NewDRAMConfig(2, 2000, 400), events)
	if err != nil {
		t.Fatal(err)
	}
	n, err := memsim.RunTrace(memsim.NewNVMConfig(2, 2000, 400, 40), events)
	if err != nil {
		t.Fatal(err)
	}
	h := memsim.NewHybridConfig(2, 2000, 400, 40, 0.125)
	h.CacheLines = int(machine.Layout().Footprint()) / 64 / 8
	hy, err := memsim.RunTrace(h, events)
	if err != nil {
		t.Fatal(err)
	}

	if !(d.AvgPowerPerChannel > n.AvgPowerPerChannel) {
		t.Fatalf("power: DRAM %v should exceed NVM %v", d.AvgPowerPerChannel, n.AvgPowerPerChannel)
	}
	if !(d.AvgBandwidthPerBank > n.AvgBandwidthPerBank) {
		t.Fatalf("bandwidth: DRAM %v should exceed NVM %v", d.AvgBandwidthPerBank, n.AvgBandwidthPerBank)
	}
	if !(hy.AvgLatency < d.AvgLatency) {
		t.Fatalf("avg latency: hybrid %v should beat DRAM %v", hy.AvgLatency, d.AvgLatency)
	}
	if !(d.AvgTotalLatency < n.AvgTotalLatency) {
		t.Fatalf("total latency: DRAM %v should beat NVM %v", d.AvgTotalLatency, n.AvgTotalLatency)
	}

	nHigh, err := memsim.RunTrace(memsim.NewNVMConfig(2, 2000, 1600, 160), events)
	if err != nil {
		t.Fatal(err)
	}
	if !(nHigh.AvgPowerPerChannel > n.AvgPowerPerChannel) {
		t.Fatal("NVM power must grow with controller frequency")
	}
	if !(nHigh.AvgTotalLatency > n.AvgTotalLatency) {
		t.Fatal("NVM total latency (cycles) must grow with controller frequency")
	}
}

// TestPipelineSurrogateAccuracy asserts the Table I headline on a reduced
// sweep: nonlinear surrogates reach R² > 0.95 on power while linear lags.
func TestPipelineSurrogateAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	machine, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 512, 8, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	points := dse.EnumerateSpace(dse.SpaceParams{
		CPUFreqsMHz:  []float64{2000, 3000, 5000, 6500},
		CtrlFreqsMHz: []float64{400, 1600},
		Channels:     []int{2, 4},
	})
	records, err := dse.Sweep(machine.Trace(), points, dse.SweepOptions{
		FootprintLines: int(machine.Layout().Footprint()) / 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dse.BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	table, _, err := dse.TrainAndEvaluate(ds, dse.DefaultModels(1), 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string]dse.ModelPerf{}
	for _, p := range table {
		if p.Metric == "Power" {
			perf[p.Model] = p
		}
	}
	if perf["SVM"].R2 < 0.95 {
		t.Fatalf("SVM power R² = %v, want > 0.95", perf["SVM"].R2)
	}
	if perf["RF"].R2 < 0.95 {
		t.Fatalf("RF power R² = %v", perf["RF"].R2)
	}
	if perf["Linear"].MSE <= perf["SVM"].MSE {
		t.Fatalf("linear (%v) should not beat SVM (%v) on power", perf["Linear"].MSE, perf["SVM"].MSE)
	}
}

// TestPipelineGraph500KernelFeedsWorkflow sanity-checks that the native
// Graph500 harness and the instrumented BFS agree on reachability for the
// same graph.
func TestPipelineGraph500KernelFeedsWorkflow(t *testing.T) {
	g, err := graph.GenerateGTGraph(512, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BFSTopDown(g, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sysim.NewMachine(sysim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sysim.TraceBFS(m, g, 11, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != ref.Visited {
		t.Fatalf("instrumented visited %d, reference %d", res.Visited, ref.Visited)
	}
}

// TestPipelineSurrogateExtrapolation checks the end use-case: a surrogate
// trained on the sweep predicts an unseen configuration close to what the
// simulator reports.
func TestPipelineSurrogateExtrapolation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	machine, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 512, 8, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	events := machine.Trace()
	foot := int(machine.Layout().Footprint()) / 64
	points := dse.EnumerateSpace(dse.SpaceParams{})
	// Hold out one NVM configuration entirely.
	holdoutIdx := -1
	for i, p := range points {
		if p.Type == memsim.NVM && p.CtrlFreqMHz == 666 && p.CPUFreqMHz == 3000 && p.Channels == 2 && p.TRCD == 67 {
			holdoutIdx = i
			break
		}
	}
	if holdoutIdx < 0 {
		t.Fatal("holdout point not found")
	}
	holdout := points[holdoutIdx]
	points = append(points[:holdoutIdx], points[holdoutIdx+1:]...)

	records, err := dse.Sweep(events, points, dse.SweepOptions{FootprintLines: foot})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dse.BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	var xs ml.MinMaxScaler
	X, err := xs.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	y, err := ds.Metric("Power")
	if err != nil {
		t.Fatal(err)
	}
	svr := ml.NewSVR()
	if err := svr.Fit(X, y); err != nil {
		t.Fatal(err)
	}

	pred := svr.Predict(xs.TransformRow(holdout.FeatureVector()))
	truth, err := memsim.RunTrace(holdout.Config(foot), events)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(pred-truth.AvgPowerPerChannel) / truth.AvgPowerPerChannel
	if relErr > 0.15 {
		t.Fatalf("surrogate off by %.1f%% on held-out config (pred %v, truth %v)",
			relErr*100, pred, truth.AvgPowerPerChannel)
	}
}
