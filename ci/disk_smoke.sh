#!/usr/bin/env bash
# Disk-pressure smoke for cmd/dsed: run the real binary with deterministic
# storage-fault injection (-fault-write-budget) so the spool "fills" mid-
# sweep, and assert that
#   1. the daemon degrades to read-only instead of crashing or failing the
#      in-flight job: /healthz reports 503 with a degraded cause,
#   2. new submissions are shed with explicit backpressure (503/507 plus a
#      Retry-After header), while reads keep serving,
#   3. once the fault clears (-fault-clear-file), recovery probes restore
#      full service without a restart: /healthz returns 200, the parked job
#      seals, and new submissions are accepted again, and
#   4. the sealed report that survived the outage is byte-identical to one
#      from a run that never saw a fault.
# The Go test suite proves the same contracts in-process
# (internal/dsed/diskfault_test.go); this script proves them for the real
# binary and flags.
set -euo pipefail

workdir="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/dsed" ./cmd/dsed

spec() { # $1=job id $2=point delay ms
  cat <<EOF
{
  "id": "$1",
  "workload": {"vertices": 256, "edge_factor": 8, "seed": 7, "repeats": 1},
  "space": {
    "CPUFreqsMHz": [2000, 6500],
    "CtrlFreqsMHz": [400],
    "Channels": [2],
    "Fractions": [0.25, 0.5, 0.75]
  },
  "workers": 1,
  "point_delay_ms": $2
}
EOF
}

start_daemon() { # $1=spool $2=addrfile [extra flags...]
  local spool="$1" addrfile="$2"
  shift 2
  rm -f "$addrfile"
  "$workdir/dsed" -addr 127.0.0.1:0 -addr-file "$addrfile" -dir "$spool" \
    -job-workers 1 -sweep-workers 1 -disk-probe 100ms "$@" &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$addrfile" ] && break
    sleep 0.1
  done
  [ -s "$addrfile" ] || { echo "FAIL: daemon never wrote its addr file"; exit 1; }
  base="http://$(cat "$addrfile")"
}

job_field() { # $1=job $2=field -> value of "field": from the status JSON
  curl -sf "$base/v1/jobs/$1" | tr ',{}' '\n\n\n' | sed -n "s/.*\"$2\"[[:space:]]*:[[:space:]]*\"\{0,1\}\([^\"]*\)\"\{0,1\}/\1/p" | head -1
}

await_done() { # $1=job
  local state=""
  for _ in $(seq 1 600); do
    state=$(job_field "$1" state || true)
    case "$state" in
      done) return 0 ;;
      failed|quarantined|cancelled) echo "FAIL: job $1 ended $state"; exit 1 ;;
    esac
    sleep 0.1
  done
  echo "FAIL: job $1 never finished (state=$state)"; exit 1
}

addrfile="$workdir/addr"

echo "== phase 1: unfaulted reference run =="
start_daemon "$workdir/spool-ref" "$addrfile"
spec smoke 0 | curl -sf -o /dev/null -X POST -d @- "$base/v1/jobs"
await_done smoke
curl -sf "$base/v1/jobs/smoke/result" > "$workdir/reference.json"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "FAIL: reference drain exited non-zero"; exit 1; }

echo "== phase 2: injected ENOSPC mid-sweep must degrade, not crash =="
healfile="$workdir/heal"
# 8KiB of spool writes covers the submission and the first checkpoints, then
# the "disk" fills long before the sweep can seal its result.
start_daemon "$workdir/spool" "$addrfile" \
  -fault-write-budget 8KiB -fault-clear-file "$healfile"
code=$(spec smoke 50 | curl -s -o /dev/null -w '%{http_code}' -X POST -d @- "$base/v1/jobs")
[ "$code" = 202 ] || { echo "FAIL: submit returned $code, want 202"; exit 1; }

degraded=""
for _ in $(seq 1 300); do
  health=$(curl -s "$base/healthz" || true)
  if echo "$health" | grep -q degraded; then degraded=1; break; fi
  sleep 0.1
done
[ -n "$degraded" ] || { echo "FAIL: daemon never reported degraded storage"; exit 1; }
hcode=$(curl -s -o /dev/null -w '%{http_code}' "$base/healthz")
[ "$hcode" = 503 ] || { echo "FAIL: degraded healthz returned $hcode, want 503"; exit 1; }
echo "degraded: $health"

# New work is shed with explicit, paced backpressure.
shed=$(spec shed 0 | curl -s -D "$workdir/shed-headers" -o /dev/null -w '%{http_code}' -X POST -d @- "$base/v1/jobs")
case "$shed" in
  503|507) ;;
  *) echo "FAIL: submit while degraded returned $shed, want 503 or 507"; exit 1 ;;
esac
grep -qi '^retry-after:' "$workdir/shed-headers" || {
  echo "FAIL: degraded rejection carried no Retry-After"; exit 1
}
echo "shed new submission with $shed + Retry-After"

# Reads still serve while degraded.
curl -sf "$base/v1/jobs/smoke" > /dev/null || { echo "FAIL: job status unreadable while degraded"; exit 1; }

# The in-flight job must be parked (or still grinding), never failed.
state=$(job_field smoke state)
case "$state" in
  failed|quarantined|cancelled) echo "FAIL: storage fault killed the in-flight job ($state)"; exit 1 ;;
esac

echo "== phase 3: clear the fault; service must recover without a restart =="
touch "$healfile"
recovered=""
for _ in $(seq 1 300); do
  hcode=$(curl -s -o /dev/null -w '%{http_code}' "$base/healthz")
  if [ "$hcode" = 200 ]; then recovered=1; break; fi
  sleep 0.1
done
[ -n "$recovered" ] || { echo "FAIL: healthz never returned to 200 after the fault cleared"; exit 1; }

await_done smoke
curl -sf "$base/v1/jobs/smoke/result" > "$workdir/survived.json"

code=$(spec after 0 | curl -s -o /dev/null -w '%{http_code}' -X POST -d @- "$base/v1/jobs")
[ "$code" = 202 ] || { echo "FAIL: submit after recovery returned $code, want 202"; exit 1; }
await_done after

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "FAIL: post-recovery drain exited non-zero"; exit 1; }

cmp "$workdir/survived.json" "$workdir/reference.json" || {
  echo "FAIL: report sealed through the outage is not byte-identical to the unfaulted one"
  exit 1
}

echo "PASS: degraded under ENOSPC with paced shedding, recovered in place, byte-identical report"
