#!/usr/bin/env bash
# Crash-recovery smoke for cmd/dsed: start the daemon, submit a paced sweep,
# kill -9 it mid-run, restart over the same spool, and assert that
#   1. the job resumes and completes (no lost jobs),
#   2. the checkpoint holds exactly one record per design point (no
#      double-run points), and
#   3. the final report is byte-identical to one from an uninterrupted
#      daemon, and
#   4. an SSE event stream held open across the crash resumes with
#      Last-Event-ID: the merged id sequence is contiguous from 1 and ends
#      in a terminal done event.
# The Go test suite proves the same contracts in-process
# (internal/dsed/crash_test.go, crash_stream_test.go); this script proves
# them for the real binary.
set -euo pipefail

workdir="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/dsed" ./cmd/dsed

# The job: the 26-point reduced space, paced at 100ms/point so the kill
# lands mid-sweep. TOTAL must match the space below.
TOTAL=26
spec() {
  local delay="$1"
  cat <<EOF
{
  "id": "smoke",
  "workload": {"vertices": 256, "edge_factor": 8, "seed": 7, "repeats": 1},
  "space": {
    "CPUFreqsMHz": [2000, 6500],
    "CtrlFreqsMHz": [400],
    "Channels": [2],
    "Fractions": [0.25, 0.5, 0.75]
  },
  "workers": 1,
  "point_delay_ms": $delay
}
EOF
}

start_daemon() { # $1=spool $2=addrfile
  rm -f "$2"
  "$workdir/dsed" -addr 127.0.0.1:0 -addr-file "$2" -dir "$1" -job-workers 1 -sweep-workers 1 &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$2" ] && break
    sleep 0.1
  done
  [ -s "$2" ] || { echo "FAIL: daemon never wrote its addr file"; exit 1; }
  base="http://$(cat "$2")"
}

job_field() { # $1=field -> value of "field": from the status JSON
  curl -sf "$base/v1/jobs/smoke" | tr ',{}' '\n\n\n' | sed -n "s/.*\"$1\"[[:space:]]*:[[:space:]]*\"\{0,1\}\([^\"]*\)\"\{0,1\}/\1/p" | head -1
}

spool="$workdir/spool"
addrfile="$workdir/addr"

echo "== phase 1: start, submit, kill -9 mid-sweep =="
start_daemon "$spool" "$addrfile"
code=$(spec 100 | curl -s -o /dev/null -w '%{http_code}' -X POST -d @- "$base/v1/jobs")
[ "$code" = 202 ] || { echo "FAIL: submit returned $code, want 202"; exit 1; }

# Hold an SSE stream open across the crash: the kill severs this curl, and
# phase 2 reconnects with Last-Event-ID from where delivery stopped.
curl -sN "$base/v1/jobs/smoke/events" > "$workdir/events1.txt" &
stream_pid=$!

for _ in $(seq 1 200); do
  done_pts=$(job_field done); done_pts=${done_pts:-0}
  [ "$done_pts" -ge 3 ] && break
  sleep 0.1
done
[ "$done_pts" -ge 3 ] || { echo "FAIL: job never made progress"; exit 1; }

kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
wait "$stream_pid" 2>/dev/null || true

# The kill can tear the final SSE line mid-write; only complete lines count.
if [ -s "$workdir/events1.txt" ] && [ -n "$(tail -c1 "$workdir/events1.txt")" ]; then
  sed -i '$d' "$workdir/events1.txt"
fi
last_id=$(sed -n 's/^id: //p' "$workdir/events1.txt" | tail -1)
last_id=${last_id:-0}
[ "$last_id" -ge 1 ] || { echo "FAIL: SSE stream delivered no events before the crash"; exit 1; }
echo "stream severed after event id $last_id"

ckpt="$spool/ckpt/smoke.jsonl"
partial=$(wc -l < "$ckpt" 2>/dev/null || echo 0)
if [ "$partial" -lt 1 ] || [ "$partial" -ge "$TOTAL" ]; then
  echo "FAIL: SIGKILL landed outside the sweep ($partial/$TOTAL checkpointed)"
  exit 1
fi
echo "killed -9 after $partial/$TOTAL checkpointed points"

echo "== phase 2: restart over the same spool, job must resume =="
start_daemon "$spool" "$addrfile"
for _ in $(seq 1 600); do
  state=$(job_field state)
  case "$state" in done) break ;; failed|quarantined|cancelled) echo "FAIL: recovered job ended $state"; exit 1 ;; esac
  sleep 0.1
done
[ "$state" = done ] || { echo "FAIL: recovered job never finished (state=$state)"; exit 1; }

lines=$(wc -l < "$ckpt")
[ "$lines" -eq "$TOTAL" ] || { echo "FAIL: checkpoint holds $lines records for $TOTAL points (duplicates or loss)"; exit 1; }

curl -sf "$base/v1/jobs/smoke/result" > "$workdir/recovered.json"

echo "== resumed SSE delivery: reconnect with Last-Event-ID =="
curl -sN -m 60 -H "Last-Event-ID: $last_id" "$base/v1/jobs/smoke/events" > "$workdir/events2.txt"
grep -q '"state":"done"' "$workdir/events2.txt" || {
  echo "FAIL: resumed stream did not end in a terminal done event"; exit 1
}
# The merged id sequence — delivered before the crash plus delivered after
# resume — must be contiguous from 1: no gaps, no duplicates.
sed -n 's/^id: //p' "$workdir/events1.txt" "$workdir/events2.txt" | awk '
  NR != $1 { printf "FAIL: merged stream line %d carries id %s\n", NR, $1; exit 1 }
  END { if (NR == 0) { print "FAIL: resumed stream was empty"; exit 1 } }
' || exit 1
merged=$(sed -n 's/^id: //p' "$workdir/events1.txt" "$workdir/events2.txt" | wc -l)
echo "merged stream contiguous: $merged events across the crash"

# Graceful drain: first SIGTERM must exit 0.
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "FAIL: SIGTERM drain exited non-zero"; exit 1; }

echo "== phase 3: uninterrupted reference run =="
start_daemon "$workdir/spool-ref" "$addrfile"
spec 0 | curl -sf -o /dev/null -X POST -d @- "$base/v1/jobs"
for _ in $(seq 1 600); do
  state=$(job_field state)
  [ "$state" = done ] && break
  sleep 0.1
done
[ "$state" = done ] || { echo "FAIL: reference job never finished (state=$state)"; exit 1; }
curl -sf "$base/v1/jobs/smoke/result" > "$workdir/reference.json"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true

cmp "$workdir/recovered.json" "$workdir/reference.json" || {
  echo "FAIL: recovered report is not byte-identical to the uninterrupted one"
  exit 1
}

echo "PASS: resumed after kill -9 with no lost jobs, no duplicate points, byte-identical report"
