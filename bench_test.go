// Package graphdse's root benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md's experiment index) and
// provides ablation benches for the design choices called out there:
//
//	Figure 2   — BenchmarkFigure2Sweep
//	Table I    — BenchmarkTable1Training
//	Figure 3   — BenchmarkFigure3Prediction
//	§III-D     — BenchmarkTraceConvertSequential / BenchmarkTraceConvertParallel
//	§IV-B      — BenchmarkRecommendation
//	DSE economics — BenchmarkSurrogatePredict vs BenchmarkMemsimReplay*
//
// Run with: go test -bench=. -benchmem
package graphdse

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"graphdse/internal/dse"
	"graphdse/internal/graph"
	"graphdse/internal/memsim"
	"graphdse/internal/ml"
	"graphdse/internal/sysim"
	"graphdse/internal/trace"
)

// Shared fixtures, built once.
var (
	fixOnce   sync.Once
	fixTrace  []trace.Event
	fixFoot   int
	fixGraph  *graph.CSR
	fixDS     *dse.Dataset
	fixXs     [][]float64
	fixYPower []float64
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		machine, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 1024, 16, 42, 1)
		if err != nil {
			b.Fatal(err)
		}
		fixTrace = machine.Trace()
		fixFoot = int(machine.Layout().Footprint()) / 64
		fixGraph, err = graph.GenerateGTGraph(1024, 16, 42)
		if err != nil {
			b.Fatal(err)
		}
		// A reduced sweep builds the ML dataset quickly.
		points := dse.EnumerateSpace(dse.SpaceParams{
			CPUFreqsMHz:  []float64{2000, 6500},
			CtrlFreqsMHz: []float64{400, 1600},
			Channels:     []int{2, 4},
		})
		records, err := dse.Sweep(fixTrace, points, dse.SweepOptions{FootprintLines: fixFoot})
		if err != nil {
			b.Fatal(err)
		}
		fixDS, err = dse.BuildDataset(records)
		if err != nil {
			b.Fatal(err)
		}
		var xs ml.MinMaxScaler
		fixXs, err = xs.FitTransform(fixDS.X)
		if err != nil {
			b.Fatal(err)
		}
		fixYPower, err = fixDS.Metric("Power")
		if err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkFigure2Sweep regenerates Figure 2: the full 416-configuration
// design-space sweep over the paper workload trace plus the per-cell
// aggregation.
func BenchmarkFigure2Sweep(b *testing.B) {
	fixtures(b)
	points := dse.EnumerateSpace(dse.SpaceParams{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		records, err := dse.Sweep(fixTrace, points, dse.SweepOptions{
			FootprintLines: fixFoot,
			FailureRate:    dse.PaperFailureRate,
			FailureSeed:    1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows := dse.BuildFigure2(records)
		if len(rows) != 32 {
			b.Fatalf("figure 2 rows = %d", len(rows))
		}
	}
}

// BenchmarkTable1Training regenerates Table I: training and evaluating all
// four surrogates on all six metrics (min-max scaled, 80/20 split).
func BenchmarkTable1Training(b *testing.B) {
	fixtures(b)
	models := dse.DefaultModels(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, _, err := dse.TrainAndEvaluate(fixDS, models, 0.2, 7)
		if err != nil {
			b.Fatal(err)
		}
		if len(table) != 24 {
			b.Fatalf("table rows = %d", len(table))
		}
	}
}

// BenchmarkFigure3Prediction regenerates the Figure 3 series: per-model
// test-set predictions for one metric.
func BenchmarkFigure3Prediction(b *testing.B) {
	fixtures(b)
	models := dse.DefaultModels(1)
	_, fig3, err := dse.TrainAndEvaluate(fixDS, models, 0.2, 7)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		dse.RenderFigure3(&buf, fig3["Power"])
	}
}

// BenchmarkRecommendation regenerates the §IV-B recommendation list from a
// sweep's aggregates.
func BenchmarkRecommendation(b *testing.B) {
	fixtures(b)
	points := dse.EnumerateSpace(dse.SpaceParams{})
	records, err := dse.Sweep(fixTrace, points, dse.SweepOptions{FootprintLines: fixFoot})
	if err != nil {
		b.Fatal(err)
	}
	rows := dse.BuildFigure2(records)
	models := dse.DefaultModels(1)
	table, _, err := dse.TrainAndEvaluate(fixDS, models, 0.2, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := dse.Recommend(rows, table)
		if rec.BestPowerType != memsim.NVM {
			b.Fatalf("power recommendation %v, want NVM (paper §IV-B)", rec.BestPowerType)
		}
	}
}

// gem5Corpus renders the workload trace in gem5 text format with interleaved
// compute lines, approximating the paper's 91.5M-line trace structure at
// reduced scale.
func gem5Corpus(b *testing.B) []byte {
	fixtures(b)
	var buf bytes.Buffer
	if err := trace.WriteGem5(&buf, fixTrace, 500); err != nil {
		b.Fatal(err)
	}
	var mixed bytes.Buffer
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		mixed.Write(line)
		mixed.WriteByte('\n')
		mixed.WriteString("0: system.cpu.fetch: inst 0x400\n")
	}
	return mixed.Bytes()
}

// BenchmarkTraceConvertSequential is the §III-D baseline.
func BenchmarkTraceConvertSequential(b *testing.B) {
	input := gem5Corpus(b)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ConvertSequential(bytes.NewReader(input), io.Discard, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceConvertParallel is the §III-D parallel chunked converter;
// compare ns/op against the sequential baseline for the speedup.
func BenchmarkTraceConvertParallel(b *testing.B) {
	input := gem5Corpus(b)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ConvertParallel(input, io.Discard, 500, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemsimReplay measures one cycle-level simulation per memory type
// — the denominator of the DSE-economics comparison (the paper's NVMain
// took ~2 hours per configuration).
func BenchmarkMemsimReplay(b *testing.B) {
	fixtures(b)
	cases := []struct {
		name string
		cfg  memsim.Config
	}{
		{"DRAM", memsim.NewDRAMConfig(2, 2000, 400)},
		{"NVM", memsim.NewNVMConfig(2, 2000, 400, 40)},
		{"HybridCache", memsim.NewHybridConfig(2, 2000, 400, 40, 0.125)},
	}
	flat := memsim.NewHybridConfig(2, 2000, 400, 40, 0.125)
	flat.HybridMode = memsim.HybridFlat
	cases = append(cases, struct {
		name string
		cfg  memsim.Config
	}{"HybridFlat", flat})
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := memsim.RunTrace(c.cfg, fixTrace); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSurrogatePredict measures one trained-surrogate query — the
// numerator of the DSE-economics comparison.
func BenchmarkSurrogatePredict(b *testing.B) {
	fixtures(b)
	svr := ml.NewSVR()
	if err := svr.Fit(fixXs, fixYPower); err != nil {
		b.Fatal(err)
	}
	rf := &ml.RandomForest{NumTrees: 100, Seed: 1}
	if err := rf.Fit(fixXs, fixYPower); err != nil {
		b.Fatal(err)
	}
	b.Run("SVM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svr.Predict(fixXs[i%len(fixXs)])
		}
	})
	b.Run("RF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rf.Predict(fixXs[i%len(fixXs)])
		}
	})
}

// BenchmarkSchedulerAblation compares FCFS and FR-FCFS controllers
// (DESIGN.md ablation).
func BenchmarkSchedulerAblation(b *testing.B) {
	fixtures(b)
	for _, sched := range []memsim.SchedulerKind{memsim.FCFS, memsim.FRFCFS} {
		cfg := memsim.NewDRAMConfig(2, 2000, 400)
		cfg.Scheduler = sched
		b.Run(sched.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := memsim.RunTrace(cfg, fixTrace); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPagePolicyAblation compares open-page and closed-page row
// management.
func BenchmarkPagePolicyAblation(b *testing.B) {
	fixtures(b)
	for _, pol := range []memsim.PagePolicy{memsim.OpenPage, memsim.ClosedPage} {
		cfg := memsim.NewDRAMConfig(2, 2000, 400)
		cfg.Policy = pol
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := memsim.RunTrace(cfg, fixTrace); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHybridCacheAblation sweeps the hybrid DRAM fraction (DESIGN.md
// ablation: cache-size sensitivity).
func BenchmarkHybridCacheAblation(b *testing.B) {
	fixtures(b)
	for _, f := range []float64{0.03, 0.125, 0.5} {
		cfg := memsim.NewHybridConfig(2, 2000, 400, 40, f)
		cfg.CacheLines = int(f * float64(fixFoot))
		b.Run(cfg.Type.String()+"-f"+trimFloat(f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := memsim.RunTrace(cfg, fixTrace); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBFSVariants compares the BFS implementations whose traces feed
// the workflow (DESIGN.md ablation: trace-shape sensitivity).
func BenchmarkBFSVariants(b *testing.B) {
	fixtures(b)
	b.Run("topdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.BFSTopDown(fixGraph, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bottomup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.BFSBottomUp(fixGraph, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("diropt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.BFSDirectionOptimizing(fixGraph, 0, graph.DirectionOptConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSVRKernelAblation compares SVR kernels on the power surrogate.
func BenchmarkSVRKernelAblation(b *testing.B) {
	fixtures(b)
	kernels := []ml.Kernel{ml.RBFKernel{Gamma: 1}, ml.LinearKernel{}, ml.PolyKernel{Gamma: 1, Coef0: 1, Degree: 2}}
	for _, k := range kernels {
		b.Run(k.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				svr := ml.NewSVR()
				svr.Kernel = k
				if err := svr.Fit(fixXs, fixYPower); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkForestSizeAblation sweeps the random-forest ensemble size.
func BenchmarkForestSizeAblation(b *testing.B) {
	fixtures(b)
	for _, n := range []int{10, 50, 200} {
		b.Run("trees-"+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rf := &ml.RandomForest{NumTrees: n, Seed: 1}
				if err := rf.Fit(fixXs, fixYPower); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSysimTraceGeneration measures the gem5-stand-in stage.
func BenchmarkSysimTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 1024, 16, 42, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphGeneration measures the GTGraph stand-in.
func BenchmarkGraphGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := graph.GenerateGTGraph(1024, 16, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func trimFloat(f float64) string {
	switch f {
	case 0.03:
		return "0.03"
	case 0.125:
		return "0.125"
	case 0.5:
		return "0.5"
	default:
		return "x"
	}
}

// BenchmarkMappingAblation compares channel address-mapping schemes
// (DESIGN.md ablation: interleaving vs NUMA-style blocking).
func BenchmarkMappingAblation(b *testing.B) {
	fixtures(b)
	for _, scheme := range []memsim.MappingScheme{memsim.MapRowInterleaved, memsim.MapChannelBlocked} {
		cfg := memsim.NewDRAMConfig(4, 2000, 666)
		cfg.Mapping = scheme
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := memsim.RunTrace(cfg, fixTrace); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdaptiveDSE measures the budgeted active-learning exploration
// against the cost of the full sweep (BenchmarkFigure2Sweep).
func BenchmarkAdaptiveDSE(b *testing.B) {
	fixtures(b)
	points := dse.EnumerateSpace(dse.SpaceParams{})
	for i := 0; i < b.N; i++ {
		a := &dse.AdaptiveDSE{Metric: "Power", InitialSamples: 16, BatchSize: 8, MaxSimulations: 64, Seed: 1}
		res, err := a.Run(fixTrace, points, dse.SweepOptions{FootprintLines: fixFoot})
		if err != nil {
			b.Fatal(err)
		}
		if res.Simulated > 64 {
			b.Fatalf("budget exceeded: %d", res.Simulated)
		}
	}
}
