// Activelearning: the paper's proposed future-work extension (§V) — an
// uncertainty-sampling active-learning loop over the memory design space.
// The memory simulator is the labeling oracle; a random-forest surrogate's
// across-tree variance picks which configurations to simulate next. The
// control arm labels the same budget uniformly at random, so the label
// efficiency of uncertainty sampling is measured directly.
package main

import (
	"fmt"
	"log"

	"graphdse/internal/dse"
	"graphdse/internal/memsim"
	"graphdse/internal/ml"
	"graphdse/internal/sysim"
)

func main() {
	machine, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 512, 8, 42, 1)
	if err != nil {
		log.Fatal(err)
	}
	events := machine.Trace()
	footprint := int(machine.Layout().Footprint()) / 64

	// The pool: every design point's feature vector. The oracle simulates a
	// point on demand and returns its total-latency metric — the hardest
	// response in Table I (lowest R² for every model but SVM).
	points := dse.EnumerateSpace(dse.SpaceParams{})
	pool := make([][]float64, len(points))
	for i, p := range points {
		pool[i] = p.FeatureVector()
	}
	var xs ml.MinMaxScaler
	pool, err = xs.FitTransform(pool)
	if err != nil {
		log.Fatal(err)
	}
	cache := map[int]float64{}
	simulations := 0
	oracleAt := func(i int) float64 {
		if v, ok := cache[i]; ok {
			return v
		}
		res, err := memsim.RunTrace(points[i].Config(footprint), events)
		if err != nil {
			log.Fatal(err)
		}
		simulations++
		cache[i] = res.AvgTotalLatency
		return cache[i]
	}
	// Index lookup by row identity (rows are unique after scaling since the
	// design points are unique).
	index := map[string]int{}
	for i, row := range pool {
		index[fmt.Sprint(row)] = i
	}
	oracle := func(x []float64) float64 { return oracleAt(index[fmt.Sprint(x)]) }

	// Held-out test set: every 7th point, fully labeled.
	var testX [][]float64
	var testY []float64
	for i := 0; i < len(pool); i += 7 {
		testX = append(testX, pool[i])
		testY = append(testY, oracleAt(i))
	}

	al := &ml.ActiveLearner{BatchSize: 8, Seed: 3}
	alRecs, err := al.Run(pool, oracle, testX, testY, 20, 12)
	if err != nil {
		log.Fatal(err)
	}
	rndRecs, err := ml.RandomSampler(pool, oracle, testX, testY, 20, 8, 12, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Active learning (uncertainty sampling) vs random sampling,")
	fmt.Println("predicting total latency (the hardest Table I metric) from configuration:")
	fmt.Printf("%-8s %-10s %-14s %-14s\n", "round", "labels", "AL test MSE", "random MSE")
	for i := range alRecs {
		rnd := "-"
		if i < len(rndRecs) {
			rnd = fmt.Sprintf("%.3e", rndRecs[i].TestMSE)
		}
		fmt.Printf("%-8d %-10d %-14.3e %-14s\n", alRecs[i].Round, alRecs[i].Labeled, alRecs[i].TestMSE, rnd)
	}
	last := alRecs[len(alRecs)-1]
	fmt.Printf("\nAL reached MSE %.3e with %d labels (%d simulator calls including the test set).\n",
		last.TestMSE, last.Labeled, simulations)
}
