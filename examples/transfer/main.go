// Transfer: the paper's §V transfer-learning direction, demonstrated on the
// DSE problem itself — a surrogate trained on the BFS workload's full sweep
// is transferred to the PageRank workload with only a handful of PageRank
// simulations, and compared against (a) reusing the BFS surrogate unchanged
// and (b) training a PageRank surrogate from scratch on the same few labels.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"graphdse/internal/dse"
	"graphdse/internal/ml"
	"graphdse/internal/sysim"
)

func main() {
	space := dse.SpaceParams{
		CPUFreqsMHz:  []float64{2000, 3000, 5000, 6500},
		CtrlFreqsMHz: []float64{400, 666, 1250, 1600},
		Channels:     []int{2, 4},
	}
	points := dse.EnumerateSpace(space)

	sweepFor := func(kind dse.WorkloadKind) *dse.Dataset {
		events, footprint, err := dse.TraceWorkload(sysim.DefaultConfig(), dse.WorkloadSpec{
			Kind: kind, Vertices: 512, EdgeFactor: 8, Seed: 42, PRIters: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		records, err := dse.Sweep(events, points, dse.SweepOptions{FootprintLines: footprint})
		if err != nil {
			log.Fatal(err)
		}
		ds, err := dse.BuildDataset(records)
		if err != nil {
			log.Fatal(err)
		}
		return ds
	}

	fmt.Println("sweeping BFS (source task, fully labeled)...")
	srcDS := sweepFor(dse.WorkloadBFS)
	fmt.Println("sweeping PageRank (target task, ground truth for evaluation)...")
	tgtDS := sweepFor(dse.WorkloadPageRank)

	// Shared feature scaling; target = total latency (workload-sensitive).
	var xs ml.MinMaxScaler
	srcX, err := xs.FitTransform(srcDS.X)
	if err != nil {
		log.Fatal(err)
	}
	tgtX := xs.Transform(tgtDS.X)
	srcY, _ := srcDS.Metric("TotalLatency")
	tgtY, _ := tgtDS.Metric("TotalLatency")

	source := &ml.RandomForest{NumTrees: 80, Seed: 1}
	if err := source.Fit(srcX, srcY); err != nil {
		log.Fatal(err)
	}

	// Few target labels: 24 random PageRank simulations.
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(len(tgtX))
	few := 24
	var fx [][]float64
	var fy []float64
	testIdx := perm[few:]
	for _, i := range perm[:few] {
		fx = append(fx, tgtX[i])
		fy = append(fy, tgtY[i])
	}
	var teX [][]float64
	var teY []float64
	for _, i := range testIdx {
		teX = append(teX, tgtX[i])
		teY = append(teY, tgtY[i])
	}

	sourceOnly := ml.MSE(teY, ml.PredictBatch(source, teX))

	scratch := &ml.RandomForest{NumTrees: 80, Seed: 2}
	if err := scratch.Fit(fx, fy); err != nil {
		log.Fatal(err)
	}
	scratchMSE := ml.MSE(teY, ml.PredictBatch(scratch, teX))

	tr := &ml.TransferRegressor{Source: source, Seed: 3}
	if err := tr.Fit(fx, fy); err != nil {
		log.Fatal(err)
	}
	transferMSE := ml.MSE(teY, ml.PredictBatch(tr, teX))

	fmt.Printf("\nPredicting PageRank total latency with %d PageRank labels:\n", few)
	fmt.Printf("  BFS surrogate reused unchanged:   MSE %.4g\n", sourceOnly)
	fmt.Printf("  trained from scratch on %d labels: MSE %.4g\n", few, scratchMSE)
	fmt.Printf("  transfer (BFS prior + residual):  MSE %.4g\n", transferMSE)
	switch {
	case transferMSE <= sourceOnly && transferMSE <= scratchMSE:
		fmt.Println("\nTransfer wins: the BFS prior carries over and the residual fixes the workload shift.")
	default:
		fmt.Println("\nTransfer did not dominate on this draw — see the label-budget sensitivity in internal/ml tests.")
	}
}
