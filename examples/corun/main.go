// Corun: a multi-programmed contention study — two BFS instances co-running
// on the same memory system (traces merged into disjoint address windows)
// versus each running alone. Quantifies how much queueing the second tenant
// adds per memory type, a question the paper's single-workload setup leaves
// open.
package main

import (
	"fmt"
	"log"

	"graphdse/internal/memsim"
	"graphdse/internal/sysim"
	"graphdse/internal/trace"
)

func main() {
	mk := func(seed int64) []trace.Event {
		m, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 1024, 16, seed, 1)
		if err != nil {
			log.Fatal(err)
		}
		return m.Trace()
	}
	alone := mk(42)
	tenant := mk(99)
	corun := trace.Merge(1<<26, alone, tenant)
	fmt.Printf("alone: %d events; co-run: %d events\n\n", len(alone), len(corun))

	flat := memsim.NewHybridConfig(2, 2000, 666, 67, 0.25)
	flat.HybridMode = memsim.HybridFlat
	configs := []struct {
		name string
		cfg  memsim.Config
	}{
		{"DRAM", memsim.NewDRAMConfig(2, 2000, 666)},
		{"NVM", memsim.NewNVMConfig(2, 2000, 666, 67)},
		{"Hybrid/f", flat},
	}
	fmt.Printf("%-9s %16s %16s %10s\n", "type", "alone totLat", "corun totLat", "slowdown")
	for _, c := range configs {
		a, err := memsim.RunTrace(c.cfg, alone)
		if err != nil {
			log.Fatal(err)
		}
		b, err := memsim.RunTrace(c.cfg, corun)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %13.1f cy %13.1f cy %9.2fx\n",
			c.name, a.AvgTotalLatency, b.AvgTotalLatency,
			b.AvgTotalLatency/a.AvgTotalLatency)
	}
	fmt.Println("\nSlow NVM cells amplify contention: the co-run slowdown is largest")
	fmt.Println("where per-request service time is longest, so consolidation")
	fmt.Println("decisions interact with the memory-technology choice.")
}
