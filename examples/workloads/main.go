// Workloads: the paper's concluding research question — "how does the graph
// size and the type of graph algorithms influence the choice of good
// parameters for the memory architectures?" — answered by sweeping BFS,
// PageRank and connected components (and two graph sizes) through the same
// design space and comparing the per-workload winners.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"graphdse/internal/dse"
	"graphdse/internal/sysim"
)

func main() {
	specs := []dse.WorkloadSpec{
		{Kind: dse.WorkloadBFS, Vertices: 1024, EdgeFactor: 16, Seed: 42},
		{Kind: dse.WorkloadBFS, Vertices: 4096, EdgeFactor: 16, Seed: 42},
		{Kind: dse.WorkloadPageRank, Vertices: 1024, EdgeFactor: 16, Seed: 42, PRIters: 3},
		{Kind: dse.WorkloadCC, Vertices: 1024, EdgeFactor: 16, Seed: 42},
	}
	// A reduced space keeps this example quick; the conclusions hold on the
	// full 416-point space via cmd/dse.
	space := dse.SpaceParams{
		CPUFreqsMHz:  []float64{2000, 6500},
		CtrlFreqsMHz: []float64{400, 1600},
		Channels:     []int{2, 4},
	}
	start := time.Now()
	comps, err := dse.CompareWorkloads(sysim.DefaultConfig(), specs, space, dse.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Per-workload memory co-design winners (%v):\n\n", time.Since(start).Round(time.Millisecond))
	dse.RenderWorkloadComparison(os.Stdout, comps)
	fmt.Println("\nReading the table: if the winning memory type changes across rows,")
	fmt.Println("the co-design choice is workload-sensitive — the cross-workload")
	fmt.Println("dataset the paper proposes for future work would then pay off.")
}
