// Mlsurrogate: regenerate the paper's Table I and Figure 3 — build the ML
// dataset from the design-space sweep, train the four surrogate regressors
// (Linear, SVM, RF, GB) per metric on an 80/20 split, report MSE/R², and
// print one Figure 3 prediction series. Also demonstrates the DSE speedup:
// surrogate prediction versus re-running the memory simulator.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"graphdse/internal/dse"
	"graphdse/internal/memsim"
	"graphdse/internal/ml"
	"graphdse/internal/sysim"
)

func main() {
	res, err := dse.RunWorkflow(dse.WorkflowOptions{
		Seed:      42,
		Repeats:   2,
		Sweep:     dse.SweepOptions{FailureRate: dse.PaperFailureRate, FailureSeed: 1},
		SplitSeed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Table I: surrogate model performance ==")
	dse.RenderTable1(os.Stdout, res.Table1)

	fmt.Println("\n== Figure 3 panel: Power ==")
	dse.RenderFigure3(os.Stdout, res.Figure3["Power"])

	// DSE economics: how much faster is querying the surrogate than
	// re-running the cycle-level simulator? (The paper's motivation: each
	// NVMain run took ~2 hours.)
	ds := res.Dataset
	var xs ml.MinMaxScaler
	X, err := xs.FitTransform(ds.X)
	if err != nil {
		log.Fatal(err)
	}
	y, err := ds.Metric("Power")
	if err != nil {
		log.Fatal(err)
	}
	svr := ml.NewSVR()
	if err := svr.Fit(X, y); err != nil {
		log.Fatal(err)
	}
	const queries = 1000
	start := time.Now()
	for i := 0; i < queries; i++ {
		svr.Predict(X[i%len(X)])
	}
	perPredict := time.Since(start) / queries

	// One simulator run for comparison, on the first surviving point.
	machine, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 1024, 16, 42, 2)
	if err != nil {
		log.Fatal(err)
	}
	simStart := time.Now()
	if _, err := memsim.RunTrace(ds.Points[0].Config(0), machine.Trace()); err != nil {
		log.Fatal(err)
	}
	perSim := time.Since(simStart)
	fmt.Printf("\n== DSE economics ==\nsurrogate prediction: %v/query\nsimulator replay:     %v/config\nspeedup:              %.0fx\n",
		perPredict, perSim, float64(perSim)/float64(perPredict))
}
