// Memsweep: regenerate the paper's Figure 2 — sweep the full 416-point
// memory design space over the BFS trace (with the paper's ~10% simulated
// crash rate) and print the per-cell metric means for DRAM, NVM and hybrid.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"graphdse/internal/dse"
	"graphdse/internal/sysim"
)

func main() {
	machine, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 1024, 16, 42, 2)
	if err != nil {
		log.Fatal(err)
	}
	events := machine.Trace()
	points := dse.EnumerateSpace(dse.SpaceParams{})
	fmt.Fprintf(os.Stderr, "sweeping %d configurations over %d trace events...\n", len(points), len(events))

	start := time.Now()
	records, err := dse.Sweep(events, points, dse.SweepOptions{
		FootprintLines: int(machine.Layout().Footprint()) / 64,
		// The paper's ~10% NVMain crash rate, expressed as a fault-injection
		// rule; the engine contains each crash in its record.
		Faults: dse.PaperFaults(dse.PaperFailureRate, 1),
	})
	if err != nil {
		log.Fatal(err)
	}
	survivors := dse.Survivors(records)
	fmt.Fprintf(os.Stderr, "%d/%d configurations survived (paper: 374/416) in %v\n",
		len(survivors), len(records), time.Since(start).Round(time.Millisecond))
	dse.RenderFailureLog(os.Stderr, dse.BuildFailureLog(records))

	dse.RenderFigure2(os.Stdout, dse.BuildFigure2(records))
}
