// Quickstart: the whole pipeline in one page — generate the paper's graph
// workload (1,024 vertices, edge factor 16), trace the Graph500 BFS kernel
// on the system simulator, replay the trace against a DRAM, an NVM and a
// hybrid memory, and compare the six performance metrics.
package main

import (
	"fmt"
	"log"

	"graphdse/internal/memsim"
	"graphdse/internal/sysim"
)

func main() {
	// 1. Workload + system simulation (the gem5 stage of Figure 1).
	machine, bfs, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 1024, 16, 42, 1)
	if err != nil {
		log.Fatal(err)
	}
	events := machine.Trace()
	fmt.Printf("BFS visited %d/1024 vertices in %d levels; trace has %d memory events\n\n",
		bfs.Visited, bfs.Iterations, len(events))

	// 2. Memory simulation (the NVMain stage) for three memory designs at
	//    2 GHz CPU, 400 MHz controller, 2 channels.
	flat := memsim.NewHybridConfig(2, 2000, 400, 40, 0.125)
	flat.HybridMode = memsim.HybridFlat
	configs := []struct {
		name string
		cfg  memsim.Config
	}{
		{"DRAM", memsim.NewDRAMConfig(2, 2000, 400)},
		{"NVM", memsim.NewNVMConfig(2, 2000, 400, 40)},
		{"Hybrid/c", memsim.NewHybridConfig(2, 2000, 400, 40, 0.125)},
		{"Hybrid/f", flat},
	}
	fmt.Printf("%-9s %10s %12s %12s %12s %12s %12s\n",
		"type", "power(W)", "BW(MB/s)", "avgLat(cy)", "totLat(cy)", "reads/ch", "writes/ch")
	for _, c := range configs {
		res, err := memsim.RunTrace(c.cfg, events)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %10.3f %12.1f %12.1f %12.1f %12.0f %12.0f\n",
			c.name, res.AvgPowerPerChannel, res.AvgBandwidthPerBank,
			res.AvgLatency, res.AvgTotalLatency,
			res.AvgReadsPerChannel, res.AvgWritesPerChannel)
	}
	fmt.Println("\nExpected shape (paper §IV-B): DRAM draws the most power and the")
	fmt.Println("highest bandwidth; NVM draws the least power; hybrids win on")
	fmt.Println("average latency (Hybrid/c = DRAM cache over NVM, Hybrid/f = flat")
	fmt.Println("address partition); DRAM beats NVM and the flat hybrid on")
	fmt.Println("queue-inclusive total latency.")
}
