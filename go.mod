module graphdse

go 1.22
