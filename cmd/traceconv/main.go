// Command traceconv converts gem5-style traces to the NVMain format. It
// implements both the sequential baseline and the paper's parallel chunked
// converter (§III-D), and reports the achieved throughput so the linear
// speedup can be observed directly. The parallel path streams: input is cut
// into line-aligned chunks as it is read, so memory stays bounded at
// O(workers × chunk) no matter how large the trace is.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphdse/internal/trace"
)

func main() {
	var (
		in        = flag.String("i", "", "input gem5-style trace (required)")
		out       = flag.String("o", "", "output NVMain trace (required)")
		ticks     = flag.Uint64("ticks-per-cycle", 500, "gem5 ticks per CPU cycle")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		chunk     = flag.Int("chunk", 0, "chunk size in bytes (0 = auto)")
		seqential = flag.Bool("sequential", false, "use the sequential baseline instead")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	var st trace.ConvertStats
	var err error
	if *seqential {
		inF, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		defer inF.Close()
		outF, ferr := os.Create(*out)
		if ferr != nil {
			fatal(ferr)
		}
		defer outF.Close()
		st, err = trace.ConvertSequential(inF, outF, *ticks)
		if err == nil {
			err = outF.Close()
		}
	} else {
		st, err = trace.ConvertFileParallel(*in, *out, *ticks, *workers, *chunk)
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "converted %d lines -> %d events in %v (%.1f Mlines/s, %d chunks, %d workers)\n",
		st.LinesIn, st.EventsOut, elapsed,
		float64(st.LinesIn)/elapsed.Seconds()/1e6, st.Chunks, st.Workers)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceconv:", err)
	os.Exit(1)
}
