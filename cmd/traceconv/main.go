// Command traceconv converts gem5-style traces to the NVMain format. It
// implements both the sequential baseline and the paper's parallel chunked
// converter (§III-D), and reports the achieved throughput so the linear
// speedup can be observed directly. The parallel path streams: input is cut
// into line-aligned chunks as it is read, so memory stays bounded at
// O(workers × chunk) no matter how large the trace is. Output is written
// atomically (temp file + rename), so a crash mid-convert never leaves a
// torn trace behind.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"graphdse/internal/artifact"
	"graphdse/internal/trace"
)

func main() {
	var (
		in        = flag.String("i", "", "input gem5-style trace (required)")
		out       = flag.String("o", "", "output NVMain trace (required)")
		ticks     = flag.Uint64("ticks-per-cycle", 500, "gem5 ticks per CPU cycle")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		chunk     = flag.Int("chunk", 0, "chunk size in bytes (0 = auto)")
		seqential = flag.Bool("sequential", false, "use the sequential baseline instead")
		strict    = flag.Bool("strict", true, "fail on the first malformed input line")
		maxBad    = flag.Int64("max-bad-lines", 0, "permissive mode: fail after this many malformed lines (0 = unlimited)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(artifact.ExitUsage)
	}
	opts := trace.ConvertOptions{
		TicksPerCycle: *ticks,
		Workers:       *workers,
		ChunkSize:     *chunk,
		Text:          trace.TextOptions{Strict: *strict, MaxBadLines: *maxBad},
	}

	start := time.Now()
	var st trace.ConvertStats
	var err error
	if *seqential {
		inF, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		defer inF.Close()
		err = artifact.WriteFileAtomic(*out, 0o644, func(w io.Writer) error {
			var cerr error
			st, cerr = trace.ConvertSequentialOpts(inF, w, opts)
			return cerr
		})
	} else {
		st, err = trace.ConvertFileParallelOpts(*in, *out, opts)
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "converted %d lines -> %d events in %v (%.1f Mlines/s, %d chunks, %d workers)\n",
		st.LinesIn, st.EventsOut, elapsed,
		float64(st.LinesIn)/elapsed.Seconds()/1e6, st.Chunks, st.Workers)
	if st.BadLines > 0 {
		fmt.Fprintf(os.Stderr, "traceconv: dropped %d malformed lines\n", st.BadLines)
		os.Exit(artifact.ExitSalvaged)
	}
}

// fatal reports err and exits with the corrupt-input code when the error is
// a detected format failure, the generic code otherwise.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceconv:", err)
	if errors.Is(err, trace.ErrFormat) || errors.Is(err, trace.ErrBadLineBudget) ||
		errors.Is(err, artifact.ErrCorrupt) || errors.Is(err, artifact.ErrTruncated) {
		os.Exit(artifact.ExitCorrupt)
	}
	os.Exit(artifact.ExitError)
}
