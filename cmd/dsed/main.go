// Command dsed is the crash-safe design-space-exploration daemon: an
// HTTP/JSON service that accepts sweep jobs, shards their design points
// across a supervised worker fleet, and survives kill -9 at any instant —
// the durable job queue and per-job checkpoints mean a restart resumes every
// interrupted job from its last completed point, with no duplicates and no
// lost jobs.
//
// Exit codes follow the artifact contract: 0 for a clean SIGTERM drain,
// artifact.ExitForced (6) when a second signal pre-empts the drain,
// artifact.ExitUsage (2) for flag errors, artifact.ExitError (1) otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"graphdse/internal/artifact"
	"graphdse/internal/dsed"
	"graphdse/internal/guard"
)

// parseBytes parses a byte size with an optional binary-unit suffix
// (KiB/MiB/GiB, or bare bytes).
func parseBytes(s string) (uint64, error) {
	mult := uint64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	for suffix, m := range map[string]uint64{"KIB": 1 << 10, "MIB": 1 << 20, "GIB": 1 << 30} {
		if strings.HasSuffix(upper, suffix) {
			mult = m
			upper = strings.TrimSuffix(upper, suffix)
			break
		}
	}
	n, err := strconv.ParseUint(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("size %q: want e.g. 512MiB or 1073741824", s)
	}
	return n * mult, nil
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound listen address to this file once serving (for :0 handshakes)")
		dir          = flag.String("dir", "dsed-spool", "spool directory for durable job records, checkpoints, and results")
		jobWorkers   = flag.Int("job-workers", 2, "concurrent jobs")
		sweepWorkers = flag.Int("sweep-workers", 4, "sweep workers per job")
		maxQueued    = flag.Int("max-queued", 64, "admission control: queued jobs beyond this are rejected with 429")
		tenantCap    = flag.Int("tenant-cap", 8, "admission control: max in-flight jobs per tenant")
		cacheEntries = flag.Int("cache-entries", 4, "decoded traces held in the content-addressed cache")
		memBudget    = flag.String("mem-budget", "", "heap soft budget, e.g. 512MiB: under pressure the fleet sheds workers (empty = off)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown window for in-flight checkpointing")
		eventBuffer  = flag.Int("event-buffer", 64, "per-subscriber event buffer: a stream consumer this far behind is evicted (resume with Last-Event-ID)")
		sseHeartbeat = flag.Duration("sse-heartbeat", 10*time.Second, "comment-heartbeat interval on /v1/jobs/{id}/events streams")
		quiet        = flag.Bool("quiet", false, "suppress operational logging")

		spoolSoft       = flag.String("spool-soft", "", "spool soft watermark, e.g. 256MiB: above it submissions are shed with 507 (empty = off)")
		spoolHard       = flag.String("spool-hard", "", "spool hard watermark: above it the daemon degrades to read-only until space frees (empty = off)")
		diskProbe       = flag.Duration("disk-probe", 2*time.Second, "disk usage rescan / degraded-mode recovery-probe interval")
		retainAge       = flag.Duration("retain-age", 0, "GC terminal jobs older than this (0 = keep forever)")
		retainJobs      = flag.Int("retain-jobs", 0, "keep at most this many terminal jobs, oldest evicted first (0 = unlimited)")
		retainBytes     = flag.String("retain-bytes", "", "cap terminal jobs' combined spool bytes, oldest evicted first (empty = unlimited)")
		maxCorrupt      = flag.Int("max-corrupt", 16, "cap on quarantined .corrupt spool records; oldest evicted beyond it")
		compactRecords  = flag.Int("compact-records", 4096, "compact a job's event journal once it exceeds this many records (-1 disables)")
		janitorInterval = flag.Duration("janitor-interval", 30*time.Second, "spool janitor sweep interval")

		// Deterministic storage-fault injection for chaos smokes. Not for
		// production: the daemon will really refuse writes.
		faultWriteBudget = flag.String("fault-write-budget", "", "TESTING: inject ENOSPC on spool writes after this many bytes, e.g. 64KiB (empty = off)")
		faultClearFile   = flag.String("fault-clear-file", "", "TESTING: stop injecting faults once this file exists (polled on every spool write)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dsed: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(artifact.ExitUsage)
	}

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	opts := dsed.Options{
		Addr: *addr,
		Dir:  *dir,
		Queue: dsed.QueueOptions{
			MaxQueued:   *maxQueued,
			TenantCap:   *tenantCap,
			EventBuffer: *eventBuffer,
			MaxCorrupt:  *maxCorrupt,
		},
		Disk: dsed.DiskPolicy{
			ProbeInterval: *diskProbe,
		},
		Retention: dsed.RetentionPolicy{
			MaxAge:         *retainAge,
			MaxJobs:        *retainJobs,
			CompactRecords: *compactRecords,
			Interval:       *janitorInterval,
		},
		SSEHeartbeat: *sseHeartbeat,
		Scheduler: dsed.SchedulerOptions{
			JobWorkers:   *jobWorkers,
			SweepWorkers: *sweepWorkers,
		},
		CacheEntries: *cacheEntries,
		DrainTimeout: *drainTimeout,
		AddrFile:     *addrFile,
		Logf:         logf,
	}
	if *memBudget != "" {
		bytes, err := parseBytes(*memBudget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsed: -mem-budget: %v\n", err)
			os.Exit(artifact.ExitUsage)
		}
		opts.HeapSoftBytes = bytes
	}
	for _, sz := range []struct {
		flagName string
		raw      string
		dst      *int64
	}{
		{"-spool-soft", *spoolSoft, &opts.Disk.SoftBytes},
		{"-spool-hard", *spoolHard, &opts.Disk.HardBytes},
		{"-retain-bytes", *retainBytes, &opts.Retention.MaxBytes},
	} {
		if sz.raw == "" {
			continue
		}
		bytes, err := parseBytes(sz.raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsed: %s: %v\n", sz.flagName, err)
			os.Exit(artifact.ExitUsage)
		}
		*sz.dst = int64(bytes)
	}
	if *faultWriteBudget != "" {
		budget, err := parseBytes(*faultWriteBudget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsed: -fault-write-budget: %v\n", err)
			os.Exit(artifact.ExitUsage)
		}
		ffs := artifact.NewFaultFS(artifact.OS)
		ffs.SetWriteBudget(int64(budget))
		if *faultClearFile != "" {
			ffs.ClearOnFile(*faultClearFile)
		}
		opts.FS = ffs
		logf("dsed: FAULT INJECTION armed: ENOSPC after %d spool bytes (clear file: %q)", budget, *faultClearFile)
	}

	d, err := dsed.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsed: %v\n", err)
		os.Exit(artifact.ExitError)
	}

	// First SIGINT/SIGTERM starts the graceful drain (stop intake,
	// checkpoint in-flight jobs, exit 0). A second signal means the operator
	// will not wait: exit ExitForced immediately — durable state is already
	// checkpointed up to the first signal, and a restart resumes from it.
	ctx, stop := guard.SignalContext(context.Background(), func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "dsed: second signal (%v): forcing exit; durable state will be recovered on restart\n", sig)
		os.Exit(artifact.ExitForced)
	})
	defer stop()

	if err := d.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dsed: %v\n", err)
		os.Exit(artifact.ExitError)
	}
}
