package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: graphdse
BenchmarkFigure2Sweep-8   	       1	105103041 ns/op
BenchmarkTraceConvertParallel-8    	       3	  41234567 ns/op	  87.65 MB/s	 1024 B/op	      12 allocs/op
BenchmarkTable1Training-16         	       2	  52000000 ns/op	  2048 B/op	       3 allocs/op
PASS
ok  	graphdse	12.345s
`

func TestParse(t *testing.T) {
	entries, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(entries))
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	wantNames := []string{"BenchmarkFigure2Sweep", "BenchmarkTable1Training", "BenchmarkTraceConvertParallel"}
	for i, w := range wantNames {
		if entries[i].Name != w {
			t.Fatalf("entry %d name %q, want %q", i, entries[i].Name, w)
		}
	}
	conv := entries[2]
	if conv.Iterations != 3 || conv.NsPerOp != 41234567 || conv.MBPerSec != 87.65 ||
		conv.BytesPerOp != 1024 || conv.AllocsPerOp != 12 {
		t.Fatalf("convert entry: %+v", conv)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":           "BenchmarkX",
		"BenchmarkX/sub-case-16": "BenchmarkX/sub-case",
		"BenchmarkPlain":         "BenchmarkPlain",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiffNames(t *testing.T) {
	missing, extra := diffNames([]string{"A", "B", "C"}, []string{"B", "C", "D"})
	if len(missing) != 1 || missing[0] != "A" {
		t.Fatalf("missing = %v", missing)
	}
	if len(extra) != 1 || extra[0] != "D" {
		t.Fatalf("extra = %v", extra)
	}
}

func TestAnnotateBaseline(t *testing.T) {
	entries, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	base := &Report{Entries: []Entry{
		{Name: "BenchmarkFigure2Sweep", NsPerOp: 210206082, AllocsPerOp: 7},
		{Name: "BenchmarkGone", NsPerOp: 99},
	}}
	annotate(entries, base)
	sweep := entries[0]
	if sweep.Name != "BenchmarkFigure2Sweep" {
		t.Fatalf("unexpected order: %+v", entries)
	}
	if sweep.BaselineNsPerOp != 210206082 || sweep.BaselineAllocsPerOp != 7 {
		t.Fatalf("baseline fields not folded in: %+v", sweep)
	}
	if sweep.SpeedupVsBaseline < 1.99 || sweep.SpeedupVsBaseline > 2.01 {
		t.Fatalf("speedup = %v, want ~2.0", sweep.SpeedupVsBaseline)
	}
	// Entries without a baseline counterpart stay unannotated.
	if entries[1].BaselineNsPerOp != 0 || entries[1].SpeedupVsBaseline != 0 {
		t.Fatalf("unmatched entry annotated: %+v", entries[1])
	}
}
