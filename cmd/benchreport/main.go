// Command benchreport converts `go test -bench` text output into the
// canonical BENCH_baseline.json format: a sorted, versioned JSON document
// that CI regenerates on every run and diffs against the committed baseline
// for structural drift (benchmarks appearing or disappearing silently).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -benchtime=1x ./... | benchreport -out BENCH_baseline.json
//	benchreport -check BENCH_baseline.json < bench.txt
//	benchreport -out BENCH_pr7.json -baseline BENCH_before.json < bench.txt
//
// With -check, benchreport exits non-zero if the benchmark NAMES in the
// input differ from the baseline's — timings are machine-dependent and are
// never compared. With -baseline, the written report embeds the prior
// report's ns/op and allocs/op per entry plus a speedup ratio, producing a
// self-contained before/after snapshot for the repo's perf trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"graphdse/internal/artifact"
)

// Entry is one benchmark result. The baseline_* fields appear only in
// reports written with -baseline: they snapshot the prior run the report
// was measured against, making a perf-trajectory document (BENCH_pr7.json
// and successors) self-contained.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op,omitempty"`
	// SpeedupVsBaseline is baseline_ns_per_op / ns_per_op (>1 is faster).
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// Report is the whole document.
type Report struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	// Baseline names the report annotated into the baseline_* fields.
	Baseline string  `json:"baseline,omitempty"`
	Entries  []Entry `json:"entries"`
}

// benchLine matches one result line, e.g.
//
//	BenchmarkFigure2Sweep-8   10   105103041 ns/op   16 B/op   2 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// parse reads go-test bench output into sorted entries.
func parse(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		e := Entry{Name: stripProcs(m[1]), Iterations: iters, NsPerOp: ns}
		rest := strings.Fields(m[4])
		for i := 0; i+1 < len(rest); i += 2 {
			val, unit := rest[i], rest[i+1]
			switch unit {
			case "B/op":
				e.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				e.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "MB/s":
				e.MBPerSec, _ = strconv.ParseFloat(val, 64)
			}
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// stripProcs drops the trailing -N GOMAXPROCS suffix so names are stable
// across runner shapes.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// names extracts the sorted benchmark name set.
func names(entries []Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// annotate folds a baseline report's timings into entries sharing a name,
// so the written report carries its own before/after comparison.
func annotate(entries []Entry, base *Report) {
	prior := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		prior[e.Name] = e
	}
	for i := range entries {
		b, ok := prior[entries[i].Name]
		if !ok {
			continue
		}
		entries[i].BaselineNsPerOp = b.NsPerOp
		entries[i].BaselineAllocsPerOp = b.AllocsPerOp
		if entries[i].NsPerOp > 0 && b.NsPerOp > 0 {
			entries[i].SpeedupVsBaseline = b.NsPerOp / entries[i].NsPerOp
		}
	}
}

func run(in io.Reader, outPath, checkPath, baselinePath string) error {
	entries, err := parse(in)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark results on input (run with -bench and pipe the output here)")
	}
	if checkPath != "" {
		data, err := os.ReadFile(checkPath)
		if err != nil {
			return err
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("baseline %s: %w", checkPath, err)
		}
		got, want := names(entries), names(base.Entries)
		missing, extra := diffNames(want, got)
		if len(missing) > 0 || len(extra) > 0 {
			return fmt.Errorf("benchmark set drifted from %s:\n  missing: %v\n  new: %v\n(regenerate the baseline with -out if this is intentional)",
				checkPath, missing, extra)
		}
		fmt.Printf("benchreport: %d benchmarks match the %s name set\n", len(got), checkPath)
		return nil
	}
	rep := Report{Schema: 1, GoVersion: runtime.Version(), Entries: entries}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("baseline %s: %w", baselinePath, err)
		}
		annotate(rep.Entries, &base)
		rep.Baseline = baselinePath
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return artifact.WriteFileAtomic(outPath, 0o644, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// diffNames returns baseline names absent from got and got names absent
// from the baseline. Both inputs are sorted.
func diffNames(want, got []string) (missing, extra []string) {
	inWant := map[string]bool{}
	for _, n := range want {
		inWant[n] = true
	}
	inGot := map[string]bool{}
	for _, n := range got {
		inGot[n] = true
	}
	for _, n := range want {
		if !inGot[n] {
			missing = append(missing, n)
		}
	}
	for _, n := range got {
		if !inWant[n] {
			extra = append(extra, n)
		}
	}
	return missing, extra
}

func main() {
	out := flag.String("out", "-", "write the JSON report here (- for stdout)")
	check := flag.String("check", "", "instead of writing, compare the input's benchmark names against this baseline")
	baseline := flag.String("baseline", "", "annotate the written report with before/after deltas against this prior report")
	flag.Parse()
	if err := run(os.Stdin, *out, *check, *baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}
