// Command traceinfo summarizes a memory trace: operation mix, inter-arrival
// distribution, address-space footprint, working-set estimate, and hot
// lines — the profile a co-design study starts from. The trace is streamed:
// memory use is bounded by the working set (distinct 64-byte lines), never
// by trace length, so paper-scale (91.5M-line) traces summarize in place.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/bits"
	"os"
	"sort"

	"graphdse/internal/artifact"
	"graphdse/internal/trace"
)

func main() {
	var (
		in     = flag.String("i", "", "input trace (required)")
		binary = flag.Bool("binary", false, "input is in binary trace format")
		top    = flag.Int("top", 5, "hottest lines to report")
		strict = flag.Bool("strict", true, "fail on the first corrupt record or malformed line")
		maxBad = flag.Int64("max-bad-lines", 0, "permissive mode: fail after this many malformed lines (0 = unlimited)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(artifact.ExitUsage)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	// Permissive mode summarizes the valid prefix of a damaged trace and
	// exits with the salvage code instead of failing outright.
	var src trace.Source
	var txt *trace.TextSource
	var bin *trace.SalvageSource
	if *binary {
		bsrc := trace.NewBinarySource(f)
		if *strict {
			src = bsrc
		} else {
			bin = trace.NewSalvageSource(bsrc)
			src = bin
		}
	} else {
		txt = trace.NewNVMainSourceOpts(f, trace.TextOptions{Strict: *strict, MaxBadLines: *maxBad})
		src = txt
	}

	// One streaming pass: aggregate stats, a log2 inter-arrival histogram
	// (constant memory, unlike sorting every gap), and per-line counts
	// (bounded by the working set, not the trace length).
	var st trace.Stats
	var gapHist [65]uint64
	var gapSum, gapCount uint64
	var prevCycle uint64
	lines := map[uint64]int{}
	err = trace.ForEach(src, func(e trace.Event) error {
		if st.Events > 0 {
			g := e.Cycle - prevCycle
			gapHist[bits.Len64(g)]++
			gapSum += g
			gapCount++
		}
		prevCycle = e.Cycle
		st.Add(e)
		lines[e.Addr/64]++
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if st.Events == 0 {
		fatal(fmt.Errorf("empty trace"))
	}

	// Salvage accounting: note what a damaged input cost and pick the exit
	// code once the summary has printed.
	exit := artifact.ExitOK
	if bin != nil && bin.Report() != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: input damaged, summarized valid prefix: %s\n", bin.Report())
		exit = artifact.ExitSalvaged
	}
	if txt != nil && txt.Report().BadLines > 0 {
		rep := txt.Report()
		fmt.Fprintf(os.Stderr, "traceinfo: dropped %d malformed lines of %d\n", rep.BadLines, rep.Lines)
		for _, le := range rep.Sample {
			fmt.Fprintf(os.Stderr, "traceinfo:   %s\n", le)
		}
		exit = artifact.ExitSalvaged
	}

	fmt.Printf("events        %d (%d reads, %d writes; %.1f%% writes)\n",
		st.Events, st.Reads, st.Writes, 100*float64(st.Writes)/float64(st.Events))
	fmt.Printf("cycle span    %d .. %d (%d cycles)\n", st.FirstCycle, st.LastCycle, st.LastCycle-st.FirstCycle)
	fmt.Printf("address range %#x .. %#x\n", st.MinAddr, st.MaxAddr)

	if gapCount > 0 {
		fmt.Printf("inter-arrival mean=%.1f p50≲%d p95≲%d p99≲%d cycles\n",
			float64(gapSum)/float64(gapCount),
			gapPercentile(&gapHist, gapCount, 0.50),
			gapPercentile(&gapHist, gapCount, 0.95),
			gapPercentile(&gapHist, gapCount, 0.99))
	}

	fmt.Printf("working set   %d distinct lines (%.1f KiB)\n", len(lines), float64(len(lines))*64/1024)
	type hot struct {
		line  uint64
		count int
	}
	hots := make([]hot, 0, len(lines))
	for l, c := range lines {
		hots = append(hots, hot{l, c})
	}
	sort.Slice(hots, func(a, b int) bool { return hots[a].count > hots[b].count })
	fmt.Printf("hottest lines:\n")
	for i := 0; i < *top && i < len(hots); i++ {
		fmt.Printf("  %#x  %d accesses (%.2f%%)\n",
			hots[i].line*64, hots[i].count, 100*float64(hots[i].count)/float64(st.Events))
	}
	os.Exit(exit)
}

// gapPercentile returns the upper bound of the log2 histogram bucket
// containing quantile q — an approximate percentile that never needs the
// gaps materialized.
func gapPercentile(hist *[65]uint64, total uint64, q float64) uint64 {
	rank := uint64(q * float64(total-1))
	var seen uint64
	for b, c := range hist {
		seen += c
		if c > 0 && seen > rank {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1
		}
	}
	return 1<<64 - 1
}

// fatal reports err and exits with the corrupt-input code when the error is
// a detected format/integrity failure, the generic code otherwise.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	if errors.Is(err, artifact.ErrCorrupt) || errors.Is(err, artifact.ErrTruncated) ||
		errors.Is(err, trace.ErrFormat) || errors.Is(err, trace.ErrBadLineBudget) {
		os.Exit(artifact.ExitCorrupt)
	}
	os.Exit(artifact.ExitError)
}
