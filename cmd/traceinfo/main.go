// Command traceinfo summarizes a memory trace: operation mix, inter-arrival
// distribution, address-space footprint, working-set estimate, and hot
// lines — the profile a co-design study starts from.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"graphdse/internal/trace"
)

func main() {
	var (
		in     = flag.String("i", "", "input trace (required)")
		binary = flag.Bool("binary", false, "input is in binary trace format")
		top    = flag.Int("top", 5, "hottest lines to report")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var events []trace.Event
	if *binary {
		events, err = trace.ReadBinary(f)
	} else {
		events, err = trace.ReadNVMain(f)
	}
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}

	st := trace.Summarize(events)
	fmt.Printf("events        %d (%d reads, %d writes; %.1f%% writes)\n",
		st.Events, st.Reads, st.Writes, 100*float64(st.Writes)/float64(st.Events))
	fmt.Printf("cycle span    %d .. %d (%d cycles)\n", st.FirstCycle, st.LastCycle, st.LastCycle-st.FirstCycle)
	fmt.Printf("address range %#x .. %#x\n", st.MinAddr, st.MaxAddr)

	// Inter-arrival distribution.
	gaps := make([]uint64, 0, len(events)-1)
	for i := 1; i < len(events); i++ {
		gaps = append(gaps, events[i].Cycle-events[i-1].Cycle)
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a] < gaps[b] })
	pct := func(q float64) uint64 { return gaps[int(q*float64(len(gaps)-1))] }
	var sum uint64
	for _, g := range gaps {
		sum += g
	}
	fmt.Printf("inter-arrival mean=%.1f p50=%d p95=%d p99=%d cycles\n",
		float64(sum)/float64(len(gaps)), pct(0.5), pct(0.95), pct(0.99))

	// Working set and hot lines at 64-byte granularity.
	lines := map[uint64]int{}
	for _, e := range events {
		lines[e.Addr/64]++
	}
	fmt.Printf("working set   %d distinct lines (%.1f KiB)\n", len(lines), float64(len(lines))*64/1024)
	type hot struct {
		line  uint64
		count int
	}
	hots := make([]hot, 0, len(lines))
	for l, c := range lines {
		hots = append(hots, hot{l, c})
	}
	sort.Slice(hots, func(a, b int) bool { return hots[a].count > hots[b].count })
	fmt.Printf("hottest lines:\n")
	for i := 0; i < *top && i < len(hots); i++ {
		fmt.Printf("  %#x  %d accesses (%.2f%%)\n",
			hots[i].line*64, hots[i].count, 100*float64(hots[i].count)/float64(len(events)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
