// Command traceinfo summarizes a memory trace: operation mix, inter-arrival
// distribution, address-space footprint, working-set estimate, and hot
// lines — the profile a co-design study starts from. The trace is streamed:
// memory use is bounded by the working set (distinct 64-byte lines), never
// by trace length, so paper-scale (91.5M-line) traces summarize in place.
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"sort"

	"graphdse/internal/trace"
)

func main() {
	var (
		in     = flag.String("i", "", "input trace (required)")
		binary = flag.Bool("binary", false, "input is in binary trace format")
		top    = flag.Int("top", 5, "hottest lines to report")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var src trace.Source
	if *binary {
		src = trace.NewBinarySource(f)
	} else {
		src = trace.NewNVMainSource(f)
	}

	// One streaming pass: aggregate stats, a log2 inter-arrival histogram
	// (constant memory, unlike sorting every gap), and per-line counts
	// (bounded by the working set, not the trace length).
	var st trace.Stats
	var gapHist [65]uint64
	var gapSum, gapCount uint64
	var prevCycle uint64
	lines := map[uint64]int{}
	err = trace.ForEach(src, func(e trace.Event) error {
		if st.Events > 0 {
			g := e.Cycle - prevCycle
			gapHist[bits.Len64(g)]++
			gapSum += g
			gapCount++
		}
		prevCycle = e.Cycle
		st.Add(e)
		lines[e.Addr/64]++
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if st.Events == 0 {
		fatal(fmt.Errorf("empty trace"))
	}

	fmt.Printf("events        %d (%d reads, %d writes; %.1f%% writes)\n",
		st.Events, st.Reads, st.Writes, 100*float64(st.Writes)/float64(st.Events))
	fmt.Printf("cycle span    %d .. %d (%d cycles)\n", st.FirstCycle, st.LastCycle, st.LastCycle-st.FirstCycle)
	fmt.Printf("address range %#x .. %#x\n", st.MinAddr, st.MaxAddr)

	if gapCount > 0 {
		fmt.Printf("inter-arrival mean=%.1f p50≲%d p95≲%d p99≲%d cycles\n",
			float64(gapSum)/float64(gapCount),
			gapPercentile(&gapHist, gapCount, 0.50),
			gapPercentile(&gapHist, gapCount, 0.95),
			gapPercentile(&gapHist, gapCount, 0.99))
	}

	fmt.Printf("working set   %d distinct lines (%.1f KiB)\n", len(lines), float64(len(lines))*64/1024)
	type hot struct {
		line  uint64
		count int
	}
	hots := make([]hot, 0, len(lines))
	for l, c := range lines {
		hots = append(hots, hot{l, c})
	}
	sort.Slice(hots, func(a, b int) bool { return hots[a].count > hots[b].count })
	fmt.Printf("hottest lines:\n")
	for i := 0; i < *top && i < len(hots); i++ {
		fmt.Printf("  %#x  %d accesses (%.2f%%)\n",
			hots[i].line*64, hots[i].count, 100*float64(hots[i].count)/float64(st.Events))
	}
}

// gapPercentile returns the upper bound of the log2 histogram bucket
// containing quantile q — an approximate percentile that never needs the
// gaps materialized.
func gapPercentile(hist *[65]uint64, total uint64, q float64) uint64 {
	rank := uint64(q * float64(total-1))
	var seen uint64
	for b, c := range hist {
		seen += c
		if c > 0 && seen > rank {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1
		}
	}
	return 1<<64 - 1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
