// Command graph500 runs the Graph500 benchmark harness natively (not under
// simulation): Kronecker graph construction, multi-root direction-optimizing
// BFS with validation, and the TEPS report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graphdse/internal/artifact"
	"graphdse/internal/graph"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "2^scale vertices")
		edgeFactor = flag.Int("ef", 16, "edges per vertex")
		roots      = flag.Int("roots", 64, "BFS roots (Graph500 specifies 64)")
		seed       = flag.Int64("seed", 42, "generator seed")
		out        = flag.String("o", "-", "report output path (atomic write), - for stdout")
	)
	flag.Parse()

	res, err := graph.RunGraph500(*scale, *edgeFactor, *roots, *seed, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graph500:", err)
		os.Exit(artifact.ExitError)
	}
	report := func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, res); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "total_time=%v\n", res.TotalTime)
		return err
	}
	if *out == "-" {
		err = report(os.Stdout)
	} else {
		// Atomic: a long benchmark run never leaves a torn report behind.
		err = artifact.WriteFileAtomic(*out, 0o644, report)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graph500:", err)
		os.Exit(artifact.ExitError)
	}
}
