// Command graph500 runs the Graph500 benchmark harness natively (not under
// simulation): Kronecker graph construction, multi-root direction-optimizing
// BFS with validation, and the TEPS report.
package main

import (
	"flag"
	"fmt"
	"os"

	"graphdse/internal/graph"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "2^scale vertices")
		edgeFactor = flag.Int("ef", 16, "edges per vertex")
		roots      = flag.Int("roots", 64, "BFS roots (Graph500 specifies 64)")
		seed       = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	res, err := graph.RunGraph500(*scale, *edgeFactor, *roots, *seed, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graph500:", err)
		os.Exit(1)
	}
	fmt.Println(res)
	fmt.Printf("total_time=%v\n", res.TotalTime)
}
