// Command gtgraph generates synthetic graphs in the GTGraph family (R-MAT,
// Erdős–Rényi, Graph500 Kronecker) and writes them as an edge list, one
// "src dst [weight]" line per edge.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"graphdse/internal/artifact"
	"graphdse/internal/graph"
)

func main() {
	var (
		model      = flag.String("model", "rmat", "generator: rmat, er (Erdős–Rényi), or graph500")
		vertices   = flag.Int("n", 1024, "number of vertices (rmat/er); graph500 uses -scale")
		scale      = flag.Int("scale", 10, "graph500 scale (2^scale vertices)")
		edgeFactor = flag.Int("ef", 16, "edges per vertex")
		seed       = flag.Int64("seed", 42, "generator seed")
		weighted   = flag.Bool("weighted", false, "attach uniform (0,1] weights")
		out        = flag.String("o", "-", "output path, - for stdout")
		stats      = flag.Bool("stats", false, "print graph statistics to stderr")
	)
	flag.Parse()

	var edges []graph.Edge
	var n int
	var err error
	switch *model {
	case "rmat":
		n = *vertices
		edges, err = graph.GenerateRMAT(ceilLog2(n), int64(n)*int64(*edgeFactor), graph.GTGraphDefault, *weighted, *seed)
		for i := range edges {
			edges[i].Src %= uint32(n)
			edges[i].Dst %= uint32(n)
		}
	case "er":
		n = *vertices
		edges, err = graph.GenerateErdosRenyi(n, int64(n)*int64(*edgeFactor), *weighted, *seed)
	case "graph500":
		n = 1 << uint(*scale)
		edges, err = graph.GenerateRMAT(*scale, int64(n)*int64(*edgeFactor), graph.Graph500RMAT, *weighted, *seed)
	default:
		err = fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		fatal(err)
	}

	write := func(out io.Writer) error {
		w := bufio.NewWriter(out)
		for _, e := range edges {
			if *weighted {
				fmt.Fprintf(w, "%d %d %.6f\n", e.Src, e.Dst, e.Weight)
			} else {
				fmt.Fprintf(w, "%d %d\n", e.Src, e.Dst)
			}
		}
		return w.Flush()
	}
	if *out == "-" {
		err = write(os.Stdout)
	} else {
		// Atomic: a crash mid-write leaves the old file (or nothing), never
		// a torn edge list.
		err = artifact.WriteFileAtomic(*out, 0o644, write)
	}
	if err != nil {
		fatal(err)
	}

	if *stats {
		g, err := graph.NewCSR(n, edges, true)
		if err != nil {
			fatal(err)
		}
		maxV, maxD := g.MaxDegree()
		comp := graph.ConnectedComponents(g)
		fmt.Fprintf(os.Stderr, "vertices=%d edges=%d maxDegree=%d(at %d) components=%d\n",
			g.NumVertices(), g.NumEdges()/2, maxD, maxV, graph.NumComponents(comp))
	}
}

func ceilLog2(n int) int {
	s := 0
	for 1<<uint(s) < n {
		s++
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gtgraph:", err)
	os.Exit(1)
}
