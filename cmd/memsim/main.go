// Command memsim replays an NVMain-format (or binary) memory trace against
// one memory configuration and prints the performance metrics the paper's
// DSE consumes — the NVMain stand-in of the workflow.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"graphdse/internal/artifact"
	"graphdse/internal/guard"
	"graphdse/internal/memsim"
	"graphdse/internal/trace"
)

// beatingSource forwards a trace source while marking supervision progress
// per delivered batch.
type beatingSource struct {
	src trace.Source
	hb  *guard.Heartbeat
}

func (b beatingSource) Next(batch []trace.Event) (int, error) {
	n, err := b.src.Next(batch)
	if n > 0 {
		b.hb.Beat()
	}
	return n, err
}

func main() {
	var (
		in       = flag.String("i", "", "input trace (required); NVMain text or binary format")
		binary   = flag.Bool("binary", false, "input is in binary trace format")
		strict   = flag.Bool("strict", true, "fail on the first corrupt record or malformed line")
		maxBad   = flag.Int64("max-bad-lines", 0, "permissive mode: fail after this many malformed lines (0 = unlimited)")
		memType  = flag.String("type", "dram", "memory type: dram, nvm, or hybrid")
		channels = flag.Int("channels", 2, "memory channels")
		cpu      = flag.Float64("cpu-mhz", 2000, "CPU frequency in MHz")
		ctrl     = flag.Float64("ctrl-mhz", 400, "controller frequency in MHz")
		trcd     = flag.Uint64("trcd", 0, "NVM tRCD in controller cycles (0 = mid-sweep default)")
		fraction = flag.Float64("fraction", 0.125, "hybrid DRAM fraction")
		flat     = flag.Bool("flat", false, "use the flat (partitioned) hybrid organization")
		sched    = flag.String("sched", "frfcfs", "scheduler: fcfs or frfcfs")
		policy   = flag.String("policy", "open", "row policy: open or closed")
		verbose  = flag.Bool("v", false, "print per-channel detail")
		deadline = flag.Duration("deadline", 0, "wall-clock deadline for the replay (0 = none; expiry exits "+fmt.Sprint(artifact.ExitTimeout)+")")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(artifact.ExitUsage)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	// Stream the trace straight into the simulator — paper-scale traces
	// (91.5M lines) never need to fit in memory as a parsed event slice.
	// Permissive mode replays the valid prefix of a damaged trace and exits
	// with the salvage code.
	var src trace.Source
	var txt *trace.TextSource
	var bin *trace.SalvageSource
	if *binary {
		bsrc := trace.NewBinarySource(f)
		if *strict {
			src = bsrc
		} else {
			bin = trace.NewSalvageSource(bsrc)
			src = bin
		}
	} else {
		txt = trace.NewNVMainSourceOpts(f, trace.TextOptions{Strict: *strict, MaxBadLines: *maxBad})
		src = txt
	}

	t := *trcd
	if t == 0 {
		t = memsim.NVMTRCDSweep(*ctrl)[2]
	}
	var cfg memsim.Config
	switch *memType {
	case "dram":
		cfg = memsim.NewDRAMConfig(*channels, *cpu, *ctrl)
	case "nvm":
		cfg = memsim.NewNVMConfig(*channels, *cpu, *ctrl, t)
	case "hybrid":
		cfg = memsim.NewHybridConfig(*channels, *cpu, *ctrl, t, *fraction)
		if *flat {
			cfg.HybridMode = memsim.HybridFlat
		}
	default:
		fatal(fmt.Errorf("unknown memory type %q", *memType))
	}
	if *sched == "fcfs" {
		cfg.Scheduler = memsim.FCFS
	}
	if *policy == "closed" {
		cfg.Policy = memsim.ClosedPage
	}

	var res *memsim.Result
	if *deadline > 0 {
		// Supervised replay: the deadline cancels the stage and the tool
		// exits with the timeout code instead of running forever. The trace
		// source doubles as the heartbeat, so progress is visible to the
		// supervisor batch by batch.
		err = guard.Run(context.Background(), "replay",
			guard.StageOptions{Timeout: *deadline, Grace: 200 * time.Millisecond},
			func(ctx context.Context, hb *guard.Heartbeat) error {
				var rerr error
				res, rerr = memsim.RunTraceSource(cfg, beatingSource{src, hb})
				return rerr
			})
	} else {
		res, err = memsim.RunTraceSource(cfg, src)
	}
	if err != nil {
		fatal(err)
	}
	exit := artifact.ExitOK
	if bin != nil && bin.Report() != nil {
		fmt.Fprintf(os.Stderr, "memsim: input damaged, replayed valid prefix: %s\n", bin.Report())
		exit = artifact.ExitSalvaged
	}
	if txt != nil && txt.Report().BadLines > 0 {
		rep := txt.Report()
		fmt.Fprintf(os.Stderr, "memsim: dropped %d malformed lines of %d\n", rep.BadLines, rep.Lines)
		exit = artifact.ExitSalvaged
	}
	fmt.Println(res)
	fmt.Printf("  energy        %8.3g mJ\n", res.TotalEnergyNJ*1e-6)
	if res.MaxRowWrites > 0 {
		fmt.Printf("  hottest row   %d writes (est. lifetime %.1f years)\n", res.MaxRowWrites, res.LifetimeYears)
	}
	if *verbose {
		for ch, st := range res.Channels {
			fmt.Printf("  ch%d: reads=%d writes=%d rowHits=%d rowMisses=%d stalls=%d\n",
				ch, st.Reads, st.Writes, st.RowHits, st.RowMisses, st.StallCycles)
		}
	}
	os.Exit(exit)
}

// fatal reports err and exits with the corrupt-input code when the error is
// a detected format/integrity failure, the timeout code when a deadline
// stopped the replay, and the generic code otherwise.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memsim:", err)
	if errors.Is(err, artifact.ErrCorrupt) || errors.Is(err, artifact.ErrTruncated) ||
		errors.Is(err, trace.ErrFormat) || errors.Is(err, trace.ErrBadLineBudget) {
		os.Exit(artifact.ExitCorrupt)
	}
	if guard.ClassOf(err) == guard.Timeout {
		os.Exit(artifact.ExitTimeout)
	}
	os.Exit(artifact.ExitError)
}
