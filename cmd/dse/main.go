// Command dse runs the paper's end-to-end workflow (Figure 1): generate the
// graph workload, trace it on the system simulator, sweep the 416-point
// memory design space through the memory simulator, train the four ML
// surrogates, and print the paper's artifacts — the Figure 2 summary table,
// the Table I model comparison, the Figure 3 prediction series, and the
// §IV-B recommendations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"graphdse/internal/artifact"
	"graphdse/internal/dse"
	"graphdse/internal/guard"
)

// parseBytes parses a byte size with an optional binary-unit suffix
// (KiB/MiB/GiB, or bare bytes).
func parseBytes(s string) (uint64, error) {
	mult := uint64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	for suffix, m := range map[string]uint64{"KIB": 1 << 10, "MIB": 1 << 20, "GIB": 1 << 30} {
		if strings.HasSuffix(upper, suffix) {
			mult = m
			upper = strings.TrimSuffix(upper, suffix)
			break
		}
	}
	n, err := strconv.ParseUint(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("size %q: want e.g. 512MiB or 1073741824", s)
	}
	return n * mult, nil
}

func main() {
	var (
		vertices   = flag.Int("n", 1024, "graph vertices (paper: 1024)")
		edgeFactor = flag.Int("ef", 16, "edge factor (paper: 16)")
		seed       = flag.Int64("seed", 42, "workload seed")
		repeats    = flag.Int("repeats", 2, "BFS roots traced")
		failures   = flag.Bool("failures", true, "inject the paper's ~10% simulation crash rate")
		figure2    = flag.Bool("figure2", false, "print the Figure 2 summary table")
		table1     = flag.Bool("table1", false, "print the Table I model comparison")
		figure3    = flag.String("figure3", "", "print the Figure 3 series for one metric (e.g. Power), or 'all'")
		recommend  = flag.Bool("recommend", false, "print the co-design recommendations")
		pareto     = flag.Bool("pareto", false, "print the Pareto-optimal configurations")
		importance = flag.Bool("importance", false, "print per-metric feature importances")
		extended   = flag.Bool("extended", false, "add Ridge/KNN/MLP to the model comparison")
		csvPath    = flag.String("csv", "", "export the ML dataset as CSV to this path")
		all        = flag.Bool("all", false, "print everything")

		checkpoint   = flag.String("checkpoint", "", "append completed sweep records to this JSON-lines file")
		resume       = flag.Bool("resume", false, "resume from -checkpoint, skipping already-completed points")
		strictCkpt   = flag.Bool("strict-checkpoint", false, "fail resume on malformed interior checkpoint lines instead of re-running them")
		checkedCSV   = flag.Bool("checked-csv", false, "wrap the -csv export in the checksummed artifact container")
		timeout      = flag.Duration("timeout", 0, "per-configuration simulation deadline (0 = none)")
		retries      = flag.Int("retries", 0, "retries for transient simulation faults")
		minSurvivors = flag.Int("min-survivors", 0, "fail unless at least this many configurations survive the sweep")
		faillog      = flag.Bool("faillog", false, "print the sweep failure log")

		deadline     = flag.Duration("deadline", 0, "whole-pipeline wall-clock deadline (0 = none; expiry exits "+fmt.Sprint(artifact.ExitTimeout)+")")
		stageTimeout = flag.Duration("stage-timeout", 0, "per-stage wall-clock deadline (0 = none)")
		heartbeat    = flag.Duration("heartbeat", 0, "per-stage heartbeat watchdog: cancel a stage whose progress stalls this long (0 = off)")
		memBudget    = flag.String("mem-budget", "", "heap soft budget, e.g. 512MiB: under pressure the sweep sheds workers instead of dying (empty = off)")
		guardReport  = flag.Bool("guard-report", false, "print the supervision run report (per-stage outcomes) to stderr")

		daemonURL   = flag.String("daemon", "", "dsed base URL, e.g. http://127.0.0.1:8080 (used by -follow)")
		follow      = flag.String("follow", "", "follow a daemon job's event stream by job ID until it completes (requires -daemon)")
		followAfter = flag.Uint64("follow-after", 0, "resume -follow delivery after this event sequence number")
	)
	flag.Parse()
	if *follow != "" {
		if *daemonURL == "" {
			fmt.Fprintln(os.Stderr, "dse: -follow requires -daemon")
			os.Exit(artifact.ExitUsage)
		}
		runFollow(*daemonURL, *follow, *followAfter)
		return
	}
	if !*figure2 && !*table1 && *figure3 == "" && !*recommend && !*pareto && !*importance && *csvPath == "" {
		*all = true
	}

	opts := dse.WorkflowOptions{
		Vertices:   *vertices,
		EdgeFactor: *edgeFactor,
		Seed:       *seed,
		Repeats:    *repeats,
		SplitSeed:  7,
	}
	if *extended {
		opts.Models = dse.ExtendedModels(*seed)
	}
	if *failures {
		opts.Sweep.Faults = dse.PaperFaults(dse.PaperFailureRate, 1)
	}
	opts.Sweep.CheckpointPath = *checkpoint
	opts.Sweep.Resume = *resume
	opts.Sweep.StrictCheckpoint = *strictCkpt
	opts.Sweep.OnCheckpointSalvage = func(rep *dse.CheckpointReport) {
		fmt.Fprintln(os.Stderr, "dse: resume salvage:", rep)
		for _, s := range rep.Sample {
			fmt.Fprintln(os.Stderr, "dse:   ", s)
		}
	}
	opts.Sweep.Timeout = *timeout
	opts.Sweep.Retries = *retries
	opts.Sweep.MinSurvivors = *minSurvivors
	opts.Guard = guard.PipelineOptions{
		Deadline: *deadline,
		Stage:    guard.StageOptions{Timeout: *stageTimeout, HeartbeatTimeout: *heartbeat},
	}
	if *memBudget != "" {
		soft, err := parseBytes(*memBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dse: -mem-budget:", err)
			os.Exit(artifact.ExitUsage)
		}
		opts.Guard.Budget.HeapSoftBytes = soft
	}

	// Ctrl-C or SIGTERM interrupts the sweep cleanly; with -checkpoint the
	// completed records are flushed and -resume picks up where the run
	// stopped. A second signal forces immediate exit for operators who
	// cannot wait for the drain.
	ctx, stop := guard.SignalContext(context.Background(), func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "dse: second signal (%v): forcing exit\n", sig)
		os.Exit(artifact.ExitError)
	})
	defer stop()

	start := time.Now()
	res, err := dse.RunWorkflowContext(ctx, opts)
	if res != nil && res.Supervision != nil {
		if *guardReport {
			guard.RenderReport(os.Stderr, res.Supervision)
		} else {
			// Downshifts always reach the run log: a silently degraded run
			// would be indistinguishable from a full-parallelism one.
			for _, d := range res.Supervision.Downshifts {
				fmt.Fprintf(os.Stderr, "guard: %s\n", d)
			}
		}
	}
	if err != nil {
		var sf *dse.SweepFailureError
		if errors.As(err, &sf) {
			fmt.Fprintln(os.Stderr, "dse: sweep failure summary:", sf)
		} else {
			fmt.Fprintln(os.Stderr, "dse:", err)
		}
		if guard.ClassOf(err) == guard.Timeout {
			os.Exit(artifact.ExitTimeout)
		}
		os.Exit(artifact.ExitError)
	}
	fmt.Fprintf(os.Stderr, "workflow completed in %v: %d trace events, %d/%d configurations survived (%d failed)\n",
		time.Since(start).Round(time.Millisecond), res.TraceEvents, res.SurvivorCount, len(res.Records), len(res.FailureLog))
	if *faillog {
		dse.RenderFailureLog(os.Stderr, res.FailureLog)
	}

	if *all || *figure2 {
		fmt.Println("== Figure 2: memory performance summary (means per cell) ==")
		dse.RenderFigure2(os.Stdout, res.Figure2)
		fmt.Println()
	}
	if *all || *table1 {
		fmt.Println("== Table I: ML model performance (min-max scaled, 80/20 split) ==")
		dse.RenderTable1(os.Stdout, res.Table1)
		fmt.Println()
	}
	if *all || *figure3 != "" {
		metrics := []string{*figure3}
		if *all || *figure3 == "all" {
			metrics = metrics[:0]
			for m := range res.Figure3 {
				metrics = append(metrics, m)
			}
			sort.Strings(metrics)
		}
		for _, m := range metrics {
			s, ok := res.Figure3[m]
			if !ok {
				fmt.Fprintf(os.Stderr, "dse: unknown metric %q\n", m)
				os.Exit(1)
			}
			if err := dse.PlotFigure3(os.Stdout, s, "SVM", 16); err != nil {
				fmt.Fprintln(os.Stderr, "dse:", err)
				os.Exit(1)
			}
			fmt.Println()
			dse.RenderFigure3(os.Stdout, s)
			fmt.Println()
		}
	}
	if *all || *recommend {
		fmt.Println("== Recommendations (§IV-B) ==")
		dse.RenderRecommendations(os.Stdout, res.Recommendation)
	}
	if *all || *pareto {
		front, err := dse.ParetoFront(res.Records, dse.DefaultObjectives())
		if err != nil {
			fmt.Fprintln(os.Stderr, "dse:", err)
			os.Exit(1)
		}
		fmt.Printf("\n== Pareto front (min power & latencies, max bandwidth): %d of %d configurations ==\n",
			len(front), res.SurvivorCount)
		for _, r := range front {
			m := r.Result
			fmt.Printf("  %-44s power=%.3fW bw=%.0fMB/s avgLat=%.1f totLat=%.1f\n",
				r.Point.ID(), m.AvgPowerPerChannel, m.AvgBandwidthPerBank, m.AvgLatency, m.AvgTotalLatency)
		}
	}
	if *all || *importance {
		fmt.Println("\n== Feature importances ==")
		for _, metric := range []string{"Power", "Bandwidth", "TotalLatency"} {
			imps, err := dse.FeatureImportanceReport(res.Dataset, metric, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dse:", err)
				os.Exit(1)
			}
			dse.RenderImportance(os.Stdout, metric, imps)
		}
	}
	if *csvPath != "" {
		// Atomic: readers of the export never observe a half-written file.
		err := artifact.WriteFileAtomic(*csvPath, 0o644, func(w io.Writer) error {
			if *checkedCSV {
				return dse.WriteCSVChecked(w, res.Dataset)
			}
			return dse.WriteCSV(w, res.Dataset)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dse:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dataset written to %s (%d rows)\n", *csvPath, res.Dataset.Len())
	}
}
