package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"graphdse/internal/artifact"
	"graphdse/internal/dsedclient"
	"graphdse/internal/guard"
)

// renderEvent prints one stream event as a human-readable line.
func renderEvent(ev dsedclient.Event) {
	switch ev.Type {
	case "state":
		line := fmt.Sprintf("job %s -> %s", ev.Job, ev.State)
		if ev.Attempt > 0 {
			line += fmt.Sprintf(" (attempt %d)", ev.Attempt)
		}
		if ev.State == "done" {
			line += fmt.Sprintf(": %d survivors, %d quarantined", ev.Survivors, ev.Quarantined)
		}
		if ev.Error != "" {
			line += ": " + ev.Error
		}
		fmt.Println(line)
	case "progress":
		fmt.Printf("job %s progress %d/%d\n", ev.Job, ev.Done, ev.Total)
	case "failure":
		line := fmt.Sprintf("job %s point %s failed [%s, %d attempts]", ev.Job, ev.Point, ev.Class, ev.Attempts)
		if ev.Error != "" {
			line += ": " + ev.Error
		}
		fmt.Println(line)
	case "seal":
		fmt.Printf("job %s result sealed: %d survivors, %d quarantined\n", ev.Job, ev.Survivors, ev.Quarantined)
	case "lag":
		fmt.Fprintf(os.Stderr, "dse: follow: %s\n", ev.Error)
	default:
		fmt.Printf("job %s event %s (seq %d)\n", ev.Job, ev.Type, ev.Seq)
	}
}

// runFollow attaches to a daemon job's event stream and rides it to the
// job's terminal state, resuming across disconnects and daemon restarts.
// The exit code reflects the terminal state: done exits 0, quarantined
// exits artifact.ExitCorrupt, failed and cancelled exit artifact.ExitError.
func runFollow(daemonURL, jobID string, after uint64) {
	ctx, stop := guard.SignalContext(context.Background(), func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "dse: second signal (%v): forcing exit\n", sig)
		os.Exit(artifact.ExitForced)
	})
	defer stop()

	client := dsedclient.New(daemonURL, dsedclient.Options{})
	term, err := client.Follow(ctx, jobID, dsedclient.FollowOptions{
		After:   after,
		OnEvent: renderEvent,
		OnRetry: func(failures int, rerr error, delay time.Duration) {
			fmt.Fprintf(os.Stderr, "dse: follow: stream lost (%v); reconnect %d in %v\n", rerr, failures, delay)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dse: follow:", err)
		switch {
		case errors.Is(err, context.Canceled):
			os.Exit(artifact.ExitError)
		case errors.Is(err, dsedclient.ErrNotFound):
			os.Exit(artifact.ExitUsage)
		default:
			os.Exit(artifact.ExitError)
		}
	}
	switch term.State {
	case "done":
		os.Exit(artifact.ExitOK)
	case "quarantined":
		os.Exit(artifact.ExitCorrupt)
	default: // failed, cancelled
		os.Exit(artifact.ExitError)
	}
}
