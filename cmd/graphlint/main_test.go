package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module for driver tests. Raw
// os.WriteFile is fine here: test files are outside the lint surface.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const gomod = "module tmpmod\n\ngo 1.22\n"

// TestExitCodeContract pins graphlint's exit-code contract:
// 0 clean, 1 findings, 2 load/type-check error.
func TestExitCodeContract(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":     gomod,
			"lib/lib.go": "package lib\n\nfunc Add(a, b int) int { return a + b }\n",
		})
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", dir, "./..."}, &out, &errb); got != exitClean {
			t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", got, exitClean, out.String(), errb.String())
		}
		if out.Len() != 0 {
			t.Fatalf("clean run printed diagnostics:\n%s", out.String())
		}
	})

	t.Run("findings", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": gomod,
			"lib/lib.go": "package lib\n\nimport \"os\"\n\n" +
				"func Save(p string, b []byte) error {\n\treturn os.WriteFile(p, b, 0o644)\n}\n",
		})
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", dir, "./..."}, &out, &errb); got != exitFindings {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", got, exitFindings, errb.String())
		}
		diag := out.String()
		if !strings.Contains(diag, "lib.go:6:") || !strings.Contains(diag, "(atomicwrite)") {
			t.Fatalf("diagnostic missing file:line or analyzer name:\n%s", diag)
		}
	})

	t.Run("suppressed finding is clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": gomod,
			"lib/lib.go": "package lib\n\nimport \"os\"\n\n" +
				"func Save(p string, b []byte) error {\n" +
				"\t//lint:ignore atomicwrite exercised by the driver test\n" +
				"\treturn os.WriteFile(p, b, 0o644)\n}\n",
		})
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", dir, "./..."}, &out, &errb); got != exitClean {
			t.Fatalf("exit = %d, want %d\nstdout:\n%s", got, exitClean, out.String())
		}
	})

	t.Run("syntax error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":     gomod,
			"lib/lib.go": "package lib\n\nfunc Broken(\n",
		})
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", dir, "./..."}, &out, &errb); got != exitLoadError {
			t.Fatalf("exit = %d, want %d", got, exitLoadError)
		}
		if errb.Len() == 0 {
			t.Fatal("load error printed nothing to stderr")
		}
	})

	t.Run("type error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":     gomod,
			"lib/lib.go": "package lib\n\nfunc Bad() int { return undefinedName }\n",
		})
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", dir, "./..."}, &out, &errb); got != exitLoadError {
			t.Fatalf("exit = %d, want %d", got, exitLoadError)
		}
	})

	t.Run("missing module", func(t *testing.T) {
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", t.TempDir(), "./..."}, &out, &errb); got != exitLoadError {
			t.Fatalf("exit = %d, want %d", got, exitLoadError)
		}
	})
}

func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-list"}, &out, &errb); got != exitClean {
		t.Fatalf("exit = %d, want %d", got, exitClean)
	}
	for _, name := range []string{"atomicwrite", "errtaxonomy", "ctxpropagate", "allocbound", "leakygoroutine"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}
