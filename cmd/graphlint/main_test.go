package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module for driver tests. Raw
// os.WriteFile is fine here: test files are outside the lint surface.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const gomod = "module tmpmod\n\ngo 1.22\n"

// TestExitCodeContract pins graphlint's exit-code contract:
// 0 clean, 1 findings, 2 load/type-check error.
func TestExitCodeContract(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":     gomod,
			"lib/lib.go": "package lib\n\nfunc Add(a, b int) int { return a + b }\n",
		})
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", dir, "./..."}, &out, &errb); got != exitClean {
			t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", got, exitClean, out.String(), errb.String())
		}
		if out.Len() != 0 {
			t.Fatalf("clean run printed diagnostics:\n%s", out.String())
		}
	})

	t.Run("findings", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": gomod,
			"lib/lib.go": "package lib\n\nimport \"os\"\n\n" +
				"func Save(p string, b []byte) error {\n\treturn os.WriteFile(p, b, 0o644)\n}\n",
		})
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", dir, "./..."}, &out, &errb); got != exitFindings {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", got, exitFindings, errb.String())
		}
		diag := out.String()
		if !strings.Contains(diag, "lib.go:6:") || !strings.Contains(diag, "(atomicwrite)") {
			t.Fatalf("diagnostic missing file:line or analyzer name:\n%s", diag)
		}
	})

	t.Run("suppressed finding is clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": gomod,
			"lib/lib.go": "package lib\n\nimport \"os\"\n\n" +
				"func Save(p string, b []byte) error {\n" +
				"\t//lint:ignore atomicwrite exercised by the driver test\n" +
				"\treturn os.WriteFile(p, b, 0o644)\n}\n",
		})
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", dir, "./..."}, &out, &errb); got != exitClean {
			t.Fatalf("exit = %d, want %d\nstdout:\n%s", got, exitClean, out.String())
		}
	})

	t.Run("syntax error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":     gomod,
			"lib/lib.go": "package lib\n\nfunc Broken(\n",
		})
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", dir, "./..."}, &out, &errb); got != exitLoadError {
			t.Fatalf("exit = %d, want %d", got, exitLoadError)
		}
		if errb.Len() == 0 {
			t.Fatal("load error printed nothing to stderr")
		}
	})

	t.Run("type error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":     gomod,
			"lib/lib.go": "package lib\n\nfunc Bad() int { return undefinedName }\n",
		})
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", dir, "./..."}, &out, &errb); got != exitLoadError {
			t.Fatalf("exit = %d, want %d", got, exitLoadError)
		}
	})

	t.Run("missing module", func(t *testing.T) {
		var out, errb bytes.Buffer
		if got := run([]string{"-dir", t.TempDir(), "./..."}, &out, &errb); got != exitLoadError {
			t.Fatalf("exit = %d, want %d", got, exitLoadError)
		}
	})
}

// dirtyModule is a module with one atomicwrite finding, used by the
// format and baseline tests below.
func dirtyModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod": gomod,
		"lib/lib.go": "package lib\n\nimport \"os\"\n\n" +
			"func Save(p string, b []byte) error {\n\treturn os.WriteFile(p, b, 0o644)\n}\n",
	})
}

func TestFormatJSON(t *testing.T) {
	dir := dirtyModule(t)
	var out, errb bytes.Buffer
	if got := run([]string{"-dir", dir, "-format", "json", "./..."}, &out, &errb); got != exitFindings {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", got, exitFindings, errb.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1:\n%s", len(findings), out.String())
	}
	f := findings[0]
	if f["analyzer"] != "atomicwrite" || f["file"] != "lib/lib.go" {
		t.Errorf("finding = %v, want atomicwrite in lib/lib.go (module-relative slash path)", f)
	}
	if _, ok := f["baselined"]; ok {
		t.Errorf("un-baselined finding must omit the baselined flag: %v", f)
	}
}

func TestFormatJSONCleanIsEmptyArray(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     gomod,
		"lib/lib.go": "package lib\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	var out, errb bytes.Buffer
	if got := run([]string{"-dir", dir, "-format", "json", "./..."}, &out, &errb); got != exitClean {
		t.Fatalf("exit = %d, want %d", got, exitClean)
	}
	if s := strings.TrimSpace(out.String()); s != "[]" {
		t.Fatalf("clean JSON output = %q, want []", s)
	}
}

func TestFormatSARIF(t *testing.T) {
	dir := dirtyModule(t)
	var out, errb bytes.Buffer
	if got := run([]string{"-dir", dir, "-format", "sarif", "./..."}, &out, &errb); got != exitFindings {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", got, exitFindings, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version/runs = %q/%d, want 2.1.0/1", log.Version, len(log.Runs))
	}
	runData := log.Runs[0]
	if runData.Tool.Driver.Name != "graphlint" {
		t.Errorf("driver name = %q", runData.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range runData.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"atomicwrite", "determinism", "lockdiscipline", "atomicmix", "fsyncorder"} {
		if !ruleIDs[want] {
			t.Errorf("SARIF rules missing %s", want)
		}
	}
	if len(runData.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(runData.Results))
	}
	res := runData.Results[0]
	if res.RuleID != "atomicwrite" || res.Level != "error" {
		t.Errorf("result = %s/%s, want atomicwrite/error", res.RuleID, res.Level)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "lib/lib.go" || loc.Region.StartLine != 6 {
		t.Errorf("location = %s:%d, want lib/lib.go:6", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
}

func TestBaselineMakesFindingsNonFatal(t *testing.T) {
	dir := dirtyModule(t)
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(`{
  "entries": [
    {
      "analyzer": "atomicwrite",
      "file": "lib/lib.go",
      "message": "raw os\\.WriteFile",
      "reason": "driver test: known debt, tracked"
    }
  ]
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if got := run([]string{"-dir", dir, "-baseline", base, "./..."}, &out, &errb); got != exitClean {
		t.Fatalf("exit = %d, want %d (baselined findings are non-fatal)\nstdout:\n%s\nstderr:\n%s",
			got, exitClean, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[baselined: driver test: known debt, tracked]") {
		t.Errorf("baselined finding must still be reported with its reason:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "1 baselined finding(s) tolerated") {
		t.Errorf("stderr must count tolerated findings:\n%s", errb.String())
	}

	// A second, un-baselined violation must still fail.
	if err := os.WriteFile(filepath.Join(dir, "lib", "extra.go"),
		[]byte("package lib\n\nimport \"os\"\n\nfunc Save2(p string, b []byte) error {\n\treturn os.WriteFile(p, b, 0o600)\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if got := run([]string{"-dir", dir, "-baseline", base, "./..."}, &out, &errb); got != exitFindings {
		t.Fatalf("exit = %d, want %d (new finding must stay fatal)\nstdout:\n%s", got, exitFindings, out.String())
	}
}

func TestBaselineStaleEntryIsFlagged(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     gomod,
		"lib/lib.go": "package lib\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(`{
  "entries": [
    {"analyzer": "atomicwrite", "file": "lib/lib.go", "message": ".*", "reason": "paid down long ago"}
  ]
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if got := run([]string{"-dir", dir, "-baseline", base, "./..."}, &out, &errb); got != exitClean {
		t.Fatalf("exit = %d, want %d", got, exitClean)
	}
	if !strings.Contains(errb.String(), "stale baseline entry") {
		t.Errorf("stale entry must be flagged on stderr:\n%s", errb.String())
	}
}

func TestBaselineReasonIsMandatory(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(`{
  "entries": [{"analyzer": "atomicwrite", "file": "lib/lib.go", "message": ".*", "reason": "  "}]
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if got := run([]string{"-dir", t.TempDir(), "-baseline", base, "./..."}, &out, &errb); got != exitLoadError {
		t.Fatalf("exit = %d, want %d (reasonless baseline entry must be rejected)", got, exitLoadError)
	}
	if !strings.Contains(errb.String(), "reason is required") {
		t.Errorf("stderr must explain the rejection:\n%s", errb.String())
	}
}

func TestFormatFlagRejectsUnknown(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-format", "xml"}, &out, &errb); got != exitLoadError {
		t.Fatalf("exit = %d, want %d", got, exitLoadError)
	}
}

func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-list"}, &out, &errb); got != exitClean {
		t.Fatalf("exit = %d, want %d", got, exitClean)
	}
	for _, name := range []string{"atomicwrite", "errtaxonomy", "ctxpropagate", "allocbound", "leakygoroutine"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}
