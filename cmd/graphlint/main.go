// Command graphlint runs the pipeline's contract analyzers over the
// module and reports violations as file:line:col diagnostics.
//
// Usage:
//
//	graphlint [-dir moduleroot] [-list] [patterns ...]
//
// Patterns follow the go tool's shape: "./..." (the default) walks the
// whole module, "internal/trace/..." a subtree, "cmd/dse" one package.
// Suppress an intentional violation with a mandatory-reason comment on or
// directly above the offending line:
//
//	//lint:ignore <analyzer> <reason>
//
// Exit codes: 0 clean, 1 findings reported, 2 the tree failed to load or
// type-check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graphdse/internal/lint"
)

const (
	exitClean     = 0
	exitFindings  = 1
	exitLoadError = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "module root (default: nearest go.mod above the working directory)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: graphlint [-dir moduleroot] [-list] [patterns ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitLoadError
	}
	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	root := *dir
	if root == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "graphlint:", err)
			return exitLoadError
		}
		root, err = lint.FindModuleRoot(cwd)
		if err != nil {
			fmt.Fprintln(stderr, "graphlint:", err)
			return exitLoadError
		}
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "graphlint:", err)
		return exitLoadError
	}
	pkgs, err := loader.LoadAll(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "graphlint:", err)
		return exitLoadError
	}

	diags := lint.Run(pkgs, lint.All)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "graphlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return exitFindings
	}
	return exitClean
}
