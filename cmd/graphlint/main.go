// Command graphlint runs the pipeline's contract analyzers over the
// module and reports violations as file:line:col diagnostics.
//
// Usage:
//
//	graphlint [-dir moduleroot] [-list] [-format text|json|sarif] [-baseline file] [patterns ...]
//
// Patterns follow the go tool's shape: "./..." (the default) walks the
// whole module, "internal/trace/..." a subtree, "cmd/dse" one package.
// Suppress an intentional violation with a mandatory-reason comment on or
// directly above the offending line:
//
//	//lint:ignore <analyzer> <reason>
//
// -baseline names a committed JSON file of known findings; matches are
// still reported (at "note" level in SARIF) but do not fail the run, so a
// new analyzer can land with pre-existing debt captured explicitly. Every
// baseline entry must carry a reason. Entries that match nothing are
// flagged as stale on stderr.
//
// -format selects the output: "text" (default) one finding per line,
// "json" a machine-readable array, "sarif" a SARIF 2.1.0 log for GitHub
// code-scanning upload.
//
// Exit codes: 0 clean (or all findings baselined), 1 active findings
// reported, 2 the tree failed to load or type-check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graphdse/internal/lint"
)

const (
	exitClean     = 0
	exitFindings  = 1
	exitLoadError = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "module root (default: nearest go.mod above the working directory)")
	list := fs.Bool("list", false, "list analyzers and exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	baselinePath := fs.String("baseline", "", "baseline file of known findings (reported but non-fatal)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: graphlint [-dir moduleroot] [-list] [-format text|json|sarif] [-baseline file] [patterns ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitLoadError
	}
	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "graphlint: unknown -format %q (want text, json, or sarif)\n", *format)
		return exitLoadError
	}

	root := *dir
	if root == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "graphlint:", err)
			return exitLoadError
		}
		root, err = lint.FindModuleRoot(cwd)
		if err != nil {
			fmt.Fprintln(stderr, "graphlint:", err)
			return exitLoadError
		}
	}

	var baseline *lint.Baseline
	if *baselinePath != "" {
		var err error
		baseline, err = lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "graphlint:", err)
			return exitLoadError
		}
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "graphlint:", err)
		return exitLoadError
	}
	pkgs, err := loader.LoadAll(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "graphlint:", err)
		return exitLoadError
	}
	for _, w := range loader.Warnings() {
		fmt.Fprintln(stderr, "graphlint: warning:", w)
	}

	diags := lint.Run(pkgs, lint.All)
	active, baselined := baseline.Apply(diags)

	switch *format {
	case "text":
		for _, d := range active {
			fmt.Fprintln(stdout, d)
		}
		for _, d := range baselined {
			fmt.Fprintf(stdout, "%s [baselined: %s]\n", d, baseline.Reason(d))
		}
	case "json":
		if err := lint.WriteJSON(stdout, root, active, baselined, baseline); err != nil {
			fmt.Fprintln(stderr, "graphlint:", err)
			return exitLoadError
		}
	case "sarif":
		if err := lint.WriteSARIF(stdout, root, active, baselined, baseline); err != nil {
			fmt.Fprintln(stderr, "graphlint:", err)
			return exitLoadError
		}
	}

	for _, e := range baseline.Stale() {
		fmt.Fprintf(stderr, "graphlint: stale baseline entry: %s in %s (%s) matched nothing — delete it\n", e.Analyzer, e.File, e.Reason)
	}
	if len(baselined) > 0 {
		fmt.Fprintf(stderr, "graphlint: %d baselined finding(s) tolerated\n", len(baselined))
	}
	if len(active) > 0 {
		fmt.Fprintf(stderr, "graphlint: %d finding(s) in %d package(s)\n", len(active), len(pkgs))
		return exitFindings
	}
	return exitClean
}
