// Command gemtrace is the gem5 stand-in of the workflow: it runs an
// instrumented graph kernel (BFS, PageRank or connected components) on the
// atomic-CPU system simulator and writes the resulting main-memory trace in
// gem5, NVMain, or binary format.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graphdse/internal/artifact"
	"graphdse/internal/graph"
	"graphdse/internal/sysim"
	"graphdse/internal/trace"
)

func main() {
	var (
		kernel     = flag.String("kernel", "bfs", "workload: bfs, bfs-parallel, pagerank, cc, or sssp")
		vertices   = flag.Int("n", 1024, "graph vertices (paper: 1024)")
		edgeFactor = flag.Int("ef", 16, "edges per vertex (paper: 16)")
		seed       = flag.Int64("seed", 42, "graph + root seed")
		repeats    = flag.Int("repeats", 1, "BFS roots to trace")
		prIters    = flag.Int("pr-iters", 5, "PageRank iterations")
		threads    = flag.Int("threads", 4, "hardware threads for bfs-parallel")
		caches     = flag.Bool("caches", false, "enable the L1/L2 hierarchy (default off, like gem5 SE atomic)")
		format     = flag.String("format", "nvmain", "output format: gem5, nvmain, or binary")
		ticks      = flag.Uint64("ticks-per-cycle", 500, "gem5 ticks per CPU cycle (500 = 2 GHz at 1ps ticks)")
		out        = flag.String("o", "-", "output path, - for stdout")
	)
	flag.Parse()

	cfg := sysim.DefaultConfig()
	cfg.CachesEnabled = *caches

	var machine *sysim.Machine
	var res *sysim.WorkloadResult
	var err error
	switch *kernel {
	case "bfs":
		machine, res, err = sysim.PaperWorkloadTrace(cfg, *vertices, *edgeFactor, *seed, *repeats)
	case "pagerank", "cc", "sssp", "bfs-parallel":
		var g *graph.CSR
		g, err = graph.GenerateGTGraph(*vertices, *edgeFactor, *seed)
		if err != nil {
			break
		}
		machine, err = sysim.NewMachine(cfg)
		if err != nil {
			break
		}
		switch *kernel {
		case "pagerank":
			res, err = sysim.TracePageRank(machine, g, *prIters)
		case "cc":
			res, err = sysim.TraceConnectedComponents(machine, g)
		case "sssp":
			res, err = sysim.TraceSSSP(machine, g, uint32(*seed%int64(*vertices)))
		case "bfs-parallel":
			res, err = sysim.TraceBFSParallel(machine, g, uint32(*seed%int64(*vertices)), *threads)
		}
	default:
		err = fmt.Errorf("unknown kernel %q", *kernel)
	}
	if err != nil {
		fatal(err)
	}

	events := machine.Trace()
	write := func(w io.Writer) error {
		switch *format {
		case "gem5":
			return trace.WriteGem5(w, events, *ticks)
		case "nvmain":
			return trace.WriteNVMain(w, events)
		case "binary":
			return trace.WriteBinary(w, events)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	if *out == "-" {
		err = write(os.Stdout)
	} else {
		// Atomic: a crash mid-write leaves the old file (or nothing), never
		// a torn trace.
		err = artifact.WriteFileAtomic(*out, 0o644, write)
	}
	if err != nil {
		fatal(err)
	}
	st := machine.Stats()
	fmt.Fprintf(os.Stderr, "kernel=%s events=%d reads=%d writes=%d instructions=%d cycles=%d visited=%d iterations=%d\n",
		*kernel, len(events), st.MemReads, st.MemWrites, st.Instructions, machine.Cycle(), res.Visited, res.Iterations)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gemtrace:", err)
	os.Exit(1)
}
